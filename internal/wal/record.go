package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"caram/internal/bitutil"
	"caram/internal/match"
	"caram/internal/subsystem"
)

// Record framing. Each record is one frame in a segment:
//
//	[u32 payloadLen][u32 crc32c(payload)][payload]
//	payload = [u64 lsn][u8 op][u8 engineLen][engine][body]
//
// All integers little-endian; the CRC is Castagnoli (CRC32C), the
// polynomial with hardware support on every target we care about. The
// length prefix lets recovery skip to the next frame without decoding;
// the CRC makes a torn or bit-rotted tail detectable before anything
// is replayed.
//
// Bodies:
//
//	insert  key.Value(16) key.Mask(16) data(16)        48 bytes
//	delete  key.Value(16) key.Mask(16)                 32 bytes
//	create  type(1) indexBits(1) slots(2) ecc(1)        5 bytes
//	drop    —
//	seal    —

// castagnoli is the CRC32C table every record and snapshot uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeader = 8
	// maxRecordBytes bounds a frame's declared payload length during
	// recovery: anything larger is corruption, not a record (the
	// largest legal record is an insert with a 255-byte engine name,
	// well under 1 KiB). Snapshot files use their own whole-file CRC.
	maxRecordBytes = 4096
)

func appendVec(buf []byte, v bitutil.Vec128) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, v.Lo)
	return binary.LittleEndian.AppendUint64(buf, v.Hi)
}

func appendTernary(buf []byte, t bitutil.Ternary) []byte {
	return appendVec(appendVec(buf, t.Value), t.Mask)
}

func readVec(p []byte) bitutil.Vec128 {
	return bitutil.Vec128{
		Lo: binary.LittleEndian.Uint64(p),
		Hi: binary.LittleEndian.Uint64(p[8:]),
	}
}

func readTernary(p []byte) bitutil.Ternary {
	return bitutil.Ternary{Value: readVec(p), Mask: readVec(p[16:])}
}

// appendRecord appends one framed record to buf and returns the
// extended slice. The caller owns LSN assignment.
func appendRecord(buf []byte, lsn uint64, e subsystem.JournalEntry) []byte {
	mark := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header, patched below
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	buf = append(buf, byte(e.Op), byte(len(e.Engine)))
	buf = append(buf, e.Engine...)
	switch e.Op {
	case subsystem.JournalInsert:
		buf = appendTernary(buf, e.Rec.Key)
		buf = appendVec(buf, e.Rec.Data)
	case subsystem.JournalDelete:
		buf = appendTernary(buf, e.Key)
	case subsystem.JournalCreate:
		ecc := byte(0)
		if e.Conf.ECC {
			ecc = 1
		}
		buf = append(buf, byte(e.Type), byte(e.Conf.IndexBits))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(e.Conf.Slots))
		buf = append(buf, ecc)
	}
	payload := buf[mark+frameHeader:]
	binary.LittleEndian.PutUint32(buf[mark:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[mark+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// decodeRecord parses one payload whose CRC has already been verified.
func decodeRecord(p []byte) (uint64, subsystem.JournalEntry, error) {
	var e subsystem.JournalEntry
	if len(p) < 10 {
		return 0, e, fmt.Errorf("wal: record payload of %d bytes", len(p))
	}
	lsn := binary.LittleEndian.Uint64(p)
	e.Op = subsystem.JournalOp(p[8])
	nameLen := int(p[9])
	if len(p) < 10+nameLen {
		return 0, e, fmt.Errorf("wal: record engine name truncated")
	}
	e.Engine = string(p[10 : 10+nameLen])
	body := p[10+nameLen:]
	switch e.Op {
	case subsystem.JournalInsert:
		if len(body) != 48 {
			return 0, e, fmt.Errorf("wal: insert body of %d bytes", len(body))
		}
		e.Rec = match.Record{Key: readTernary(body), Data: readVec(body[32:])}
	case subsystem.JournalDelete:
		if len(body) != 32 {
			return 0, e, fmt.Errorf("wal: delete body of %d bytes", len(body))
		}
		e.Key = readTernary(body)
	case subsystem.JournalCreate:
		if len(body) != 5 {
			return 0, e, fmt.Errorf("wal: create body of %d bytes", len(body))
		}
		e.Type = subsystem.EngineType(body[0])
		e.Conf = subsystem.TypedConfig{
			IndexBits: int(body[1]),
			Slots:     int(binary.LittleEndian.Uint16(body[2:])),
			ECC:       body[4] == 1,
		}
	case subsystem.JournalDrop, subsystem.JournalSeal:
		if len(body) != 0 {
			return 0, e, fmt.Errorf("wal: %d-byte body on a bodyless record", len(body))
		}
	default:
		return 0, e, fmt.Errorf("wal: unknown record op %d", e.Op)
	}
	return lsn, e, nil
}
