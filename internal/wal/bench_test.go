package wal

import (
	"testing"
	"time"

	"caram/internal/subsystem"
)

// BenchmarkWALInsert prices durability on the mutation path: one
// acked insert+delete pair per iteration (the pair keeps occupancy
// flat, so capacity never distorts long runs) through the same
// Concurrent-with-journal stack the server uses. `off` is the
// WAL-less baseline; the other cases span the sync policies —
// `always` pays an fsync per ack, `interval` amortizes it across the
// group-commit window, `never` defers it to segment roll/seal.
// Results feed BENCH_PR10.json via `make bench-json`.
func BenchmarkWALInsert(b *testing.B) {
	bench := func(b *testing.B, con *subsystem.Concurrent) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := uint64(i%200 + 1)
			if err := con.Insert("db", rec(k)); err != nil {
				b.Fatal(err)
			}
			if err := con.Delete("db", key(k)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		sub := subsystem.New(0)
		if err := sub.AddEngine(testEngine(b, "db")); err != nil {
			b.Fatal(err)
		}
		bench(b, subsystem.NewConcurrent(sub))
	})
	for _, tc := range []struct {
		name string
		sync SyncPolicy
	}{
		{"always", SyncPolicy{Mode: SyncAlways}},
		{"interval=5ms", SyncPolicy{Mode: SyncInterval, Interval: 5 * time.Millisecond}},
		{"never", SyncPolicy{Mode: SyncNever}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			con, w, _ := openStack(b, b.TempDir(), Options{Sync: tc.sync})
			defer w.Seal() //nolint:errcheck
			bench(b, con)
		})
	}
}
