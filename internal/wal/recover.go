package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"caram/internal/cam"
	"caram/internal/subsystem"
)

// RecoverResult describes what boot recovery found and rebuilt.
type RecoverResult struct {
	// Engines is the recovered roster in deterministic order: snapshot
	// order, then bootstrap engines absent from the snapshot, then
	// engines created by replayed records, minus replayed drops (with
	// dropped bootstrap engines re-added empty at the end — flag
	// engines are guaranteed present at every boot).
	Engines []*subsystem.Engine
	// RosterLSN seeds Concurrent.SetJournal's roster replay gate.
	RosterLSN uint64
	// SnapshotLSN is the bound of the snapshot recovery anchored on
	// (0 when none existed).
	SnapshotLSN uint64
	// LastLSN is the highest LSN observed; the reopened log continues
	// from LastLSN+1.
	LastLSN uint64
	// Replayed counts log records applied over the snapshot. Zero
	// after a graceful shutdown — the property the shutdown test and
	// the crash harness's SIGTERM leg assert.
	Replayed int
	// TruncatedBytes is how much torn tail was cut from the final
	// segment (0 on a clean log).
	TruncatedBytes int
	// CleanShutdown reports that the log ended with a seal record.
	CleanShutdown bool
}

// errTorn marks a frame that cannot be trusted: short, CRC-mismatched,
// or undecodable. In the final segment it means "the tail ends here";
// anywhere else it is corruption of fsynced history and recovery
// refuses to guess.
var errTorn = errors.New("wal: torn record")

// Recover rebuilds state from a data directory and opens the log for
// appending. bootstrap is the flag-configured roster of empty engines:
// snapshot images load into a bootstrap engine when the geometry
// matches (preserving any attached fault injector); otherwise the
// engine is rebuilt from the snapshot's own config. The WAL tail is
// then replayed in LSN order through the same Insert/Delete/typed-
// construction paths live traffic uses, gated per engine by
// AppliedLSN and for CREATE/DROP by RosterLSN, so nothing applies
// twice. A torn or corrupt record at the tail of the final segment is
// truncated, never replayed; the same damage in an earlier (sealed,
// fsynced) segment is a hard error.
func Recover(dir string, bootstrap []*subsystem.Engine, opts Options) (*Log, *RecoverResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}

	st := &replayState{
		m:   make(map[string]*subsystem.Engine),
		res: &RecoverResult{},
	}
	for _, e := range bootstrap {
		st.m[e.Name] = e
		st.order = append(st.order, e.Name)
	}

	bound, snap, err := loadLatestSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	if snap != nil {
		st.res.SnapshotLSN = bound
		st.rosterLSN = snap.RosterLSN
		st.lastLSN = bound
		if err := st.overlay(snap); err != nil {
			return nil, nil, err
		}
	}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	for i, seg := range segs {
		final := i == len(segs)-1
		if err := st.replaySegment(filepath.Join(dir, seg.name), seg.start, final); err != nil {
			return nil, nil, err
		}
	}

	// Flag engines are guaranteed present at every boot: one dropped in
	// a previous life comes back empty (its durable history ended at
	// the drop), new flag engines appear empty.
	for _, e := range bootstrap {
		if _, ok := st.m[e.Name]; !ok {
			e.Main.Clear()
			e.AppliedLSN = st.lastLSN
			st.m[e.Name] = e
			st.order = append(st.order, e.Name)
		}
	}
	for _, name := range st.order {
		st.res.Engines = append(st.res.Engines, st.m[name])
	}
	st.res.RosterLSN = st.rosterLSN
	st.res.LastLSN = st.lastLSN
	st.res.CleanShutdown = st.sealed

	l := &Log{
		dir:     dir,
		opts:    opts,
		nextLSN: st.lastLSN + 1,
		written: st.lastLSN,
		durable: st.lastLSN,
		snapLSN: st.res.SnapshotLSN,
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	// A crash just after a segment roll can leave a record-free
	// segment already named for lastLSN+1; recovery proved it holds no
	// replayable record (otherwise lastLSN would be higher), so the
	// fresh active segment replaces it.
	if err := os.Remove(filepath.Join(dir, segmentName(st.lastLSN+1))); err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	remaining, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	l.segments.Store(int64(len(remaining)))
	l.ioMu.Lock()
	err = l.openSegmentLocked(st.lastLSN + 1)
	l.ioMu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	l.bg.Add(1)
	go l.syncer()
	return l, st.res, nil
}

// replayState threads the roster through snapshot overlay and segment
// replay.
type replayState struct {
	m         map[string]*subsystem.Engine
	order     []string
	rosterLSN uint64
	lastLSN   uint64
	sealed    bool
	res       *RecoverResult
}

// overlay loads the snapshot image over the bootstrap roster. The
// snapshot's engine order wins (bootstrap-only engines keep their
// relative order after it).
func (st *replayState) overlay(img *subsystem.Image) error {
	order := make([]string, 0, len(img.Engines)+len(st.order))
	seen := make(map[string]bool, len(img.Engines))
	for i := range img.Engines {
		ei := &img.Engines[i]
		eng := st.m[ei.Name]
		if eng == nil || eng.Main.LoadImage(ei.Rows) != nil {
			ne, err := subsystem.NewTypedEngine(ei.Name, ei.Type, ei.Conf)
			if err != nil {
				return fmt.Errorf("wal: snapshot engine %q: %w", ei.Name, err)
			}
			if err := ne.Main.LoadImage(ei.Rows); err != nil {
				return fmt.Errorf("wal: snapshot engine %q: %w", ei.Name, err)
			}
			eng = ne
		}
		eng.AppliedLSN = ei.AppliedLSN
		if ei.HasOverflow {
			if eng.Overflow == nil {
				dev, err := cam.New(ei.OverflowCfg)
				if err != nil {
					return fmt.Errorf("wal: snapshot engine %q overflow: %w", ei.Name, err)
				}
				eng.Overflow = dev
			}
			for _, oe := range ei.Overflow {
				if err := eng.Overflow.Insert(oe.Rec, oe.Priority); err != nil {
					return fmt.Errorf("wal: snapshot engine %q overflow: %w", ei.Name, err)
				}
			}
		}
		st.m[ei.Name] = eng
		order = append(order, ei.Name)
		seen[ei.Name] = true
	}
	for _, name := range st.order {
		if !seen[name] {
			order = append(order, name)
		}
	}
	st.order = order
	return nil
}

// replaySegment applies one segment's records. final marks the last
// segment on disk — the only place torn records are legal; they are
// truncated away so the next boot sees a clean tail.
func (st *replayState) replaySegment(path string, wantStart uint64, final bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < 16 || string(data[:8]) != segMagic ||
		binary.LittleEndian.Uint64(data[8:]) != wantStart {
		if final {
			// A crash during segment creation can leave a torn header;
			// nothing in this file was ever acknowledged as written.
			st.res.TruncatedBytes += len(data)
			return os.Remove(path)
		}
		return fmt.Errorf("wal: segment %s: bad header", path)
	}
	off := 16
	for off < len(data) {
		n, payload := frameAt(data, off)
		if payload == nil {
			if !final {
				return fmt.Errorf("wal: segment %s: corrupt record at offset %d: %w", path, off, errTorn)
			}
			st.res.TruncatedBytes += len(data) - off
			return os.Truncate(path, int64(off))
		}
		lsn, e, err := decodeRecord(payload)
		if err != nil {
			if !final {
				return fmt.Errorf("wal: segment %s: offset %d: %w", path, off, err)
			}
			st.res.TruncatedBytes += len(data) - off
			return os.Truncate(path, int64(off))
		}
		if err := st.apply(lsn, e); err != nil {
			return fmt.Errorf("wal: segment %s: lsn %d: %w", path, lsn, err)
		}
		off += n
	}
	return nil
}

// frameAt validates the frame at off and returns its total length and
// payload, or (0, nil) when the frame is torn, oversized, or fails its
// CRC.
func frameAt(data []byte, off int) (int, []byte) {
	if len(data)-off < frameHeader {
		return 0, nil
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if n == 0 || n > maxRecordBytes || len(data)-off-frameHeader < n {
		return 0, nil
	}
	payload := data[off+frameHeader : off+frameHeader+n]
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, nil
	}
	return frameHeader + n, payload
}

// apply replays one record through the idempotence gates.
func (st *replayState) apply(lsn uint64, e subsystem.JournalEntry) error {
	if lsn > st.lastLSN {
		st.lastLSN = lsn
	}
	st.sealed = e.Op == subsystem.JournalSeal
	switch e.Op {
	case subsystem.JournalSeal:
		// Clean-shutdown marker; nothing to apply.
	case subsystem.JournalCreate:
		if lsn <= st.rosterLSN {
			return nil
		}
		st.rosterLSN = lsn
		if _, dup := st.m[e.Engine]; dup {
			return fmt.Errorf("wal: create of existing engine %q", e.Engine)
		}
		eng, err := subsystem.NewTypedEngine(e.Engine, e.Type, e.Conf)
		if err != nil {
			return err
		}
		eng.AppliedLSN = lsn
		st.m[e.Engine] = eng
		st.order = append(st.order, e.Engine)
		st.res.Replayed++
	case subsystem.JournalDrop:
		if lsn <= st.rosterLSN {
			return nil
		}
		st.rosterLSN = lsn
		delete(st.m, e.Engine)
		for i, n := range st.order {
			if n == e.Engine {
				st.order = append(st.order[:i], st.order[i+1:]...)
				break
			}
		}
		st.res.Replayed++
	case subsystem.JournalInsert:
		eng := st.m[e.Engine]
		if eng == nil || lsn <= eng.AppliedLSN {
			return nil
		}
		// Insert errors are swallowed deliberately: the record was
		// applied (and possibly acked) in the previous life; a replay
		// failure here could only come from capacity already consumed
		// by the very same record's snapshot image, which the
		// AppliedLSN gate excludes — but fault-injected engines may
		// legitimately differ, and losing one record beats refusing to
		// boot.
		eng.Insert(e.Rec, nil) //nolint:errcheck
		eng.AppliedLSN = lsn
		st.res.Replayed++
	case subsystem.JournalDelete:
		eng := st.m[e.Engine]
		if eng == nil || lsn <= eng.AppliedLSN {
			return nil
		}
		// Deletes are logged before they apply, so a logged delete may
		// have found nothing: ErrNotFound replays as the same no-op.
		eng.Delete(e.Key) //nolint:errcheck
		eng.AppliedLSN = lsn
		st.res.Replayed++
	default:
		return fmt.Errorf("wal: unknown op %d", e.Op)
	}
	return nil
}
