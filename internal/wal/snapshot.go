package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"caram/internal/cam"
	"caram/internal/subsystem"
)

// Snapshot files. One file holds the whole roster image:
//
//	[8 magic "CARSNP01"][u32 payloadLen][u32 crc32c(payload)][payload]
//	payload = [u64 bound][u64 rosterLSN][u32 nEngines] engines...
//	engine  = [u8 nameLen][name][u8 type]
//	          [u8 indexBits][u16 slots][u8 ecc]
//	          [u64 appliedLSN]
//	          [u32 nWords][nWords x u64 row words]
//	          [u8 hasOverflow]
//	          ( [u32 camEntries][u8 camKeyBits][u8 camKind]
//	            [u32 nRecords] records... )      when hasOverflow
//	record  = key.Value(16) key.Mask(16) data(16) [u16 priority]
//
// bound is the LSN horizon: every record with lsn <= bound is
// reflected in the image, so replay starts strictly after it and
// sealed segments ending at or before it can be deleted. The file is
// written to a temp name, fsynced, renamed into place, and the
// directory fsynced — a crash mid-snapshot leaves the previous
// snapshot untouched and a garbage .tmp recovery ignores.

func appendSnapshotImage(buf []byte, bound uint64, img subsystem.Image) []byte {
	buf = appendU64(buf, bound)
	buf = appendU64(buf, img.RosterLSN)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(img.Engines)))
	for _, ei := range img.Engines {
		buf = append(buf, byte(len(ei.Name)))
		buf = append(buf, ei.Name...)
		buf = append(buf, byte(ei.Type))
		ecc := byte(0)
		if ei.Conf.ECC {
			ecc = 1
		}
		buf = append(buf, byte(ei.Conf.IndexBits))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(ei.Conf.Slots))
		buf = append(buf, ecc)
		buf = appendU64(buf, ei.AppliedLSN)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ei.Rows)))
		for _, w := range ei.Rows {
			buf = appendU64(buf, w)
		}
		if !ei.HasOverflow {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ei.OverflowCfg.Entries))
		buf = append(buf, byte(ei.OverflowCfg.KeyBits), byte(ei.OverflowCfg.Kind))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ei.Overflow)))
		for _, oe := range ei.Overflow {
			buf = appendTernary(buf, oe.Rec.Key)
			buf = appendVec(buf, oe.Rec.Data)
			buf = binary.LittleEndian.AppendUint16(buf, uint16(oe.Priority))
		}
	}
	return buf
}

// snapReader is a bounds-checked cursor over a snapshot payload.
type snapReader struct {
	p   []byte
	off int
	err error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.p)-r.off < n {
		r.err = fmt.Errorf("wal: snapshot truncated at offset %d", r.off)
		return nil
	}
	b := r.p[r.off : r.off+n]
	r.off += n
	return b
}

func (r *snapReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *snapReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *snapReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func decodeSnapshotImage(p []byte) (uint64, subsystem.Image, error) {
	r := &snapReader{p: p}
	bound := r.u64()
	img := subsystem.Image{RosterLSN: r.u64()}
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		var ei subsystem.EngineImage
		ei.Name = string(r.take(int(r.u8())))
		ei.Type = subsystem.EngineType(r.u8())
		ei.Conf.IndexBits = int(r.u8())
		ei.Conf.Slots = int(r.u16())
		ei.Conf.ECC = r.u8() == 1
		ei.AppliedLSN = r.u64()
		words := int(r.u32())
		if r.err == nil && len(r.p)-r.off < words*8 {
			r.err = fmt.Errorf("wal: snapshot row image truncated")
			break
		}
		ei.Rows = make([]uint64, words)
		for w := range ei.Rows {
			ei.Rows[w] = r.u64()
		}
		if r.u8() == 1 {
			ei.HasOverflow = true
			ei.OverflowCfg = cam.Config{
				Entries: int(r.u32()),
				KeyBits: int(r.u8()),
				Kind:    cam.Kind(r.u8()),
			}
			recs := int(r.u32())
			for j := 0; j < recs && r.err == nil; j++ {
				var oe subsystem.OverflowEntry
				key := r.take(32)
				data := r.take(16)
				prio := r.u16()
				if r.err == nil {
					oe.Rec.Key = readTernary(key)
					oe.Rec.Data = readVec(data)
					oe.Priority = int(prio)
					ei.Overflow = append(ei.Overflow, oe)
				}
			}
		}
		if r.err == nil {
			img.Engines = append(img.Engines, ei)
		}
	}
	if r.err != nil {
		return 0, subsystem.Image{}, r.err
	}
	if r.off != len(p) {
		return 0, subsystem.Image{}, fmt.Errorf("wal: %d trailing snapshot bytes", len(p)-r.off)
	}
	return bound, img, nil
}

// Snapshot captures the roster image, persists it, and truncates the
// log: the active segment is rolled and every sealed segment whose
// records all fall at or before the bound is deleted, along with older
// snapshot files. The image callback runs outside any wal lock (it
// takes the subsystem's own locks); the bound is the LSN horizon read
// before capture, which is safe because append and apply share the
// engine-lock critical section — every record at or below the bound
// was applied before its engine was captured.
func (l *Log) Snapshot(image func() subsystem.Image) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	if err := l.Err(); err != nil {
		return err
	}

	l.mu.Lock()
	bound := l.nextLSN - 1
	l.mu.Unlock()

	img := image()
	payload := appendSnapshotImage(nil, bound, img)
	file := make([]byte, 0, len(payload)+16)
	file = append(file, snapMagic...)
	file = binary.LittleEndian.AppendUint32(file, uint32(len(payload)))
	file = binary.LittleEndian.AppendUint32(file, crc32.Checksum(payload, castagnoli))
	file = append(file, payload...)

	final := filepath.Join(l.dir, snapshotName(bound))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, file); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}

	// Everything at or below the bound must be durable before any
	// segment covering it is deleted.
	if err := l.flush(true); err != nil {
		return err
	}

	l.ioMu.Lock()
	l.mu.Lock()
	next := l.written + 1
	l.mu.Unlock()
	var err error
	// A record-free active segment (header only) is already the
	// post-snapshot tail and already named next — rolling it would
	// recreate the same file name under itself.
	if l.segSize > 16 {
		err = l.rollLocked(next)
	}
	if err == nil {
		err = l.pruneLocked(bound)
	}
	l.ioMu.Unlock()
	if err != nil {
		return err
	}

	l.mu.Lock()
	if bound > l.snapLSN {
		l.snapLSN = bound
	}
	l.mu.Unlock()
	return nil
}

// pruneLocked (ioMu held) deletes sealed segments fully covered by the
// snapshot bound — a segment is deletable when its successor starts at
// or before bound+1 — and snapshot files older than the bound.
func (l *Log) pruneLocked(bound uint64) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].start <= bound+1 {
			if err := os.Remove(filepath.Join(l.dir, segs[i].name)); err != nil {
				return err
			}
			l.segments.Add(-1)
		}
	}
	snaps, err := listSnapshots(l.dir)
	if err != nil {
		return err
	}
	for _, sn := range snaps {
		if sn.bound < bound {
			if err := os.Remove(filepath.Join(l.dir, sn.name)); err != nil {
				return err
			}
		}
	}
	return syncDir(l.dir)
}

type segmentFile struct {
	name  string
	start uint64
}

type snapshotFile struct {
	name  string
	bound uint64
}

// listSegments returns the data directory's segments in start-LSN
// order, parsed from their names (the header start LSN is verified at
// replay time).
func listSegments(dir string) ([]segmentFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentFile
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		start, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segmentFile{name: name, start: start})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

func listSnapshots(dir string) ([]snapshotFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []snapshotFile
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		bound, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
		if err != nil {
			continue
		}
		snaps = append(snaps, snapshotFile{name: name, bound: bound})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].bound < snaps[j].bound })
	return snaps, nil
}

// loadLatestSnapshot returns the newest snapshot that passes magic and
// CRC validation, or zero values when none exists. Invalid snapshots
// are skipped (an older valid one still anchors recovery), never
// deleted — they are evidence.
func loadLatestSnapshot(dir string) (uint64, *subsystem.Image, error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, nil
		}
		return 0, nil, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, snaps[i].name))
		if err != nil {
			return 0, nil, err
		}
		if len(data) < 16 || string(data[:8]) != snapMagic {
			continue
		}
		n := binary.LittleEndian.Uint32(data[8:])
		crc := binary.LittleEndian.Uint32(data[12:])
		if int(n) != len(data)-16 {
			continue
		}
		payload := data[16:]
		if crc32.Checksum(payload, castagnoli) != crc {
			continue
		}
		bound, img, err := decodeSnapshotImage(payload)
		if err != nil {
			continue
		}
		return bound, &img, nil
	}
	return 0, nil, nil
}

// Snapshotter runs fn every interval until stop is closed — the
// periodic-snapshot loop the server owns. Exposed here so the cadence
// logic stays next to the machinery it drives.
func Snapshotter(interval time.Duration, stop <-chan struct{}, fn func() error, onErr func(error)) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if err := fn(); err != nil && onErr != nil {
				onErr(err)
			}
		}
	}
}

// writeFileSync writes data to path and fsyncs the file.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
