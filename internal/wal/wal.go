// Package wal is the durability substrate: a segmented, CRC32C-framed
// write-ahead log over the subsystem's mutation stream, group-committed
// by a background syncer, plus point-in-time snapshots of the
// insert-side shadow image and boot recovery that replays the log tail
// over the latest snapshot. The design follows the paper's §3.2
// observation the ECC layer already exploits: the host-resident
// logical image is the authoritative copy of every table — here it is
// made to survive the process.
//
// Layout of a data directory:
//
//	wal-<startLSN %016x>.seg   log segments, last one active
//	snap-<boundLSN %016x>.snap engine images; only the newest matters
//
// Each segment starts with an 8-byte magic ("CARWAL01") and the u64
// start LSN, then framed records (record.go). A snapshot bounds replay:
// every record with lsn <= bound is reflected in it, so sealed segments
// that end at or before the bound are deleted after a snapshot lands.
//
// Concurrency: Append only assigns an LSN and extends an in-memory
// buffer under l.mu — it is called while an engine lock is held and
// must never block on I/O. All file I/O (write, fsync, segment roll)
// happens under l.ioMu, on the syncer goroutine or on the rare
// snapshot/seal paths, against a double-buffered batch, so an fsync in
// flight never delays appends. Commit under sync=always waits on a
// condition variable until the syncer reports the LSN durable — many
// waiters share one fsync (group commit).
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"caram/internal/subsystem"
)

// SyncMode selects when appended records are fsynced.
type SyncMode uint8

const (
	// SyncAlways fsyncs before Commit returns: an acknowledged write
	// survives SIGKILL and power loss.
	SyncAlways SyncMode = iota
	// SyncInterval fsyncs on a timer: a crash loses at most one
	// interval of acknowledged writes.
	SyncInterval
	// SyncNever leaves fsync to the OS (and to Seal): fastest, no
	// guarantee for anything not yet flushed at the moment of a crash.
	SyncNever
)

// SyncPolicy is a SyncMode plus its interval, parseable from the
// -wal-sync flag forms "always", "interval=<duration>", "never".
type SyncPolicy struct {
	Mode     SyncMode
	Interval time.Duration
}

func (p SyncPolicy) String() string {
	switch p.Mode {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval=" + p.Interval.String()
	}
	return "never"
}

// ParseSyncPolicy parses the -wal-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch {
	case s == "always":
		return SyncPolicy{Mode: SyncAlways}, nil
	case s == "never":
		return SyncPolicy{Mode: SyncNever}, nil
	case strings.HasPrefix(s, "interval="):
		d, err := time.ParseDuration(s[len("interval="):])
		if err != nil || d <= 0 {
			return SyncPolicy{}, fmt.Errorf("wal: bad sync interval %q", s)
		}
		return SyncPolicy{Mode: SyncInterval, Interval: d}, nil
	}
	return SyncPolicy{}, fmt.Errorf("wal: bad sync policy %q (want always, interval=<duration>, never)", s)
}

// Options configures a Log.
type Options struct {
	Sync SyncPolicy
	// SegmentBytes rolls the active segment once it exceeds this size;
	// 0 means 64 MiB.
	SegmentBytes int64
	// SlowSync is a test hook: the syncer sleeps this long before
	// taking each commit batch, widening the window in which a SIGKILL
	// catches acknowledged-nothing, buffered-something state — the
	// kill-injection harness aims here.
	SlowSync time.Duration
}

const (
	segMagic            = "CARWAL01"
	snapMagic           = "CARSNP01"
	defaultSegmentBytes = 64 << 20
	// flushChunk bounds userland buffering under relaxed sync modes:
	// once this much is pending the syncer is kicked to write (without
	// fsync under SyncNever) so memory stays flat under write storms.
	flushChunk = 1 << 20
)

// ErrClosed is returned for operations on a sealed log.
var ErrClosed = errors.New("wal: closed")

// Log is an open write-ahead log. Create one with Recover.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond // broadcast when durable/err/closed change
	buf     []byte     // framed records not yet handed to the OS
	spare   []byte     // the other half of the double buffer
	nextLSN uint64     // next LSN to assign
	written uint64     // highest LSN written to the file
	durable uint64     // highest LSN fsynced
	snapLSN uint64     // bound of the newest snapshot on disk
	err     error      // sticky I/O error; the log is dead once set
	closed  bool

	ioMu    sync.Mutex // serializes all file I/O
	f       *os.File   // active segment
	segSize int64

	segments atomic.Int64 // on-disk segment count, including active

	kick chan struct{}
	done chan struct{}
	bg   sync.WaitGroup

	snapMu sync.Mutex // serializes Snapshot callers

	fsyncs     atomic.Uint64
	fsyncNanos atomic.Uint64
	lastFsync  atomic.Int64 // unix nanos of the last fsync completion
}

// Append encodes the entry, assigns it the next LSN, and buffers it.
// It never performs I/O — safe under an engine lock. The record is not
// durable (and under sync=always not even written) until Commit.
func (l *Log) Append(e subsystem.JournalEntry) (uint64, error) {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if len(e.Engine) > 255 {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: engine name of %d bytes", len(e.Engine))
	}
	lsn := l.nextLSN
	l.nextLSN++
	l.buf = appendRecord(l.buf, lsn, e)
	needKick := l.opts.Sync.Mode != SyncAlways && len(l.buf) >= flushChunk
	l.mu.Unlock()
	if needKick {
		l.kickSyncer()
	}
	return lsn, nil
}

// Commit blocks until lsn is durable under the sync policy. Under
// SyncAlways that means written and fsynced; under SyncInterval and
// SyncNever it returns immediately (the ticker / the OS will get
// there) — reporting only a sticky log error.
func (l *Log) Commit(lsn uint64) error {
	if lsn == 0 {
		return nil
	}
	if l.opts.Sync.Mode != SyncAlways {
		return l.Err()
	}
	l.mu.Lock()
	for l.durable < lsn && l.err == nil && !l.closed {
		l.mu.Unlock()
		l.kickSyncer()
		l.mu.Lock()
		if l.durable >= lsn || l.err != nil || l.closed {
			break
		}
		l.cond.Wait()
	}
	err := l.err
	if err == nil && l.durable < lsn {
		err = ErrClosed
	}
	l.mu.Unlock()
	return err
}

// LastLSN returns the highest LSN assigned so far (0 when none).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Err returns the sticky I/O error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *Log) kickSyncer() {
	select {
	case l.kick <- struct{}{}:
	default: // a kick is already pending
	}
}

// syncer is the background group-commit loop: every kick (a Commit
// waiter under sync=always, or buffer pressure) and every interval
// tick flushes the pending batch in one write and, policy permitting,
// one fsync shared by every waiter.
func (l *Log) syncer() {
	defer l.bg.Done()
	var tick <-chan time.Time
	if l.opts.Sync.Mode == SyncInterval {
		t := time.NewTicker(l.opts.Sync.Interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-l.done:
			return
		case <-l.kick:
			l.flush(l.opts.Sync.Mode != SyncNever)
		case <-tick:
			l.flush(true)
		}
	}
}

// flush writes the pending batch to the active segment and, when
// fsync is set, makes it durable, advancing the commit horizon. Errors
// are sticky: the first failed write or fsync kills the log.
func (l *Log) flush(fsync bool) error {
	if d := l.opts.SlowSync; d > 0 {
		// Injected before the batch is taken: a SIGKILL in this window
		// loses exactly the userland-buffered, never-acknowledged
		// records — the state the crash harness asserts absent.
		time.Sleep(d)
	}
	l.ioMu.Lock()
	defer l.ioMu.Unlock()

	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	batch := l.buf
	target := l.nextLSN - 1
	l.buf = l.spare[:0]
	l.spare = nil
	alreadyDurable := l.durable
	l.mu.Unlock()

	var err error
	if len(batch) > 0 {
		if _, err = l.f.Write(batch); err == nil {
			l.segSize += int64(len(batch))
		}
	}
	// A roll requires everything in the retiring segment durable first
	// (recovery treats a non-final torn segment as fatal), so a
	// size-triggered roll forces the fsync even under relaxed policies.
	needRoll := err == nil && l.segSize >= l.opts.SegmentBytes
	synced := false
	if err == nil && (needRoll || (fsync && (len(batch) > 0 || alreadyDurable < target))) {
		start := time.Now()
		if err = l.f.Sync(); err == nil {
			synced = true
			l.fsyncs.Add(1)
			l.fsyncNanos.Add(uint64(time.Since(start)))
			l.lastFsync.Store(time.Now().UnixNano())
		}
	}
	if err == nil && needRoll {
		err = l.rollLocked(target + 1)
	}

	l.mu.Lock()
	if err != nil {
		if l.err == nil {
			l.err = fmt.Errorf("wal: %w", err)
		}
	} else {
		if target > l.written {
			l.written = target
		}
		if synced && target > l.durable {
			l.durable = target
		}
		l.spare = batch[:0]
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	return err
}

// rollLocked (ioMu held) seals the active segment and opens a fresh
// one whose records will start at startLSN. The retiring segment is
// fsynced first: every sealed segment is durable by construction,
// which is what lets recovery treat a torn non-final segment as fatal
// corruption rather than an expected crash artifact.
func (l *Log) rollLocked(startLSN uint64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	return l.openSegmentLocked(startLSN)
}

// openSegmentLocked (ioMu held) creates and syncs a new active segment.
func (l *Log) openSegmentLocked(startLSN uint64) error {
	name := segmentName(startLSN)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, 16)
	hdr = append(hdr, segMagic...)
	hdr = appendU64(hdr, startLSN)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segSize = 16
	l.segments.Add(1)
	return nil
}

// Seal appends the clean-shutdown marker, flushes and fsyncs
// everything, and closes the log. A sealed log replays zero records on
// the next boot. Further Appends fail with ErrClosed.
func (l *Log) Seal() error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		return err
	}
	lsn := l.nextLSN
	l.nextLSN++
	l.buf = appendRecord(l.buf, lsn, subsystem.JournalEntry{Op: subsystem.JournalSeal})
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()

	close(l.done)
	l.bg.Wait()
	err := l.flush(true)

	l.ioMu.Lock()
	if l.f != nil {
		if cerr := l.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.ioMu.Unlock()
	return err
}

// Stats is a point-in-time observation of the log for WAL STATUS and
// the metrics exposition.
type Stats struct {
	LSN         uint64 // highest assigned LSN
	Durable     uint64 // highest fsynced LSN
	SnapshotLSN uint64 // bound of the newest snapshot
	Pending     uint64 // LSNs assigned but not yet durable
	Segments    int    // on-disk segments, including active
	Policy      string
	Fsyncs      uint64
	FsyncNanos  uint64
	LastFsync   int64 // unix nanos of last fsync; 0 = never
	Sealed      bool
}

// Stats returns current counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	s := Stats{
		LSN:         l.nextLSN - 1,
		Durable:     l.durable,
		SnapshotLSN: l.snapLSN,
		Policy:      l.opts.Sync.String(),
		Sealed:      l.closed,
	}
	if s.LSN > l.durable {
		s.Pending = s.LSN - l.durable
	}
	l.mu.Unlock()
	s.Segments = int(l.segments.Load())
	s.Fsyncs = l.fsyncs.Load()
	s.FsyncNanos = l.fsyncNanos.Load()
	s.LastFsync = l.lastFsync.Load()
	return s
}

func segmentName(startLSN uint64) string {
	return fmt.Sprintf("wal-%016x.seg", startLSN)
}

func snapshotName(bound uint64) string {
	return fmt.Sprintf("snap-%016x.snap", bound)
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
