package wal

import (
	"path/filepath"
	"testing"
	"time"

	"caram/internal/bitutil"
	"caram/internal/match"
	"caram/internal/subsystem"
)

func testEngine(t testing.TB, name string) *subsystem.Engine {
	t.Helper()
	e, err := subsystem.NewTypedEngine(name, subsystem.ExactEngine,
		subsystem.TypedConfig{IndexBits: 6, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// openStack recovers dir with a single bootstrap engine "db" and wires
// the full mutation path a live server uses: Concurrent over the
// recovered roster, journaling through the recovered log.
func openStack(t testing.TB, dir string, opts Options) (*subsystem.Concurrent, *Log, *RecoverResult) {
	t.Helper()
	w, res, err := Recover(dir, []*subsystem.Engine{testEngine(t, "db")}, opts)
	if err != nil {
		t.Fatal(err)
	}
	sub := subsystem.New(0)
	for _, e := range res.Engines {
		if err := sub.AddEngine(e); err != nil {
			t.Fatal(err)
		}
	}
	con := subsystem.NewConcurrent(sub).SetJournal(w, res.RosterLSN)
	return con, w, res
}

func key(i uint64) bitutil.Ternary { return bitutil.Exact(bitutil.FromUint64(i)) }

func rec(i uint64) match.Record {
	return match.Record{Key: key(i), Data: bitutil.FromUint64(i*3 + 1)}
}

func mustHit(t *testing.T, con *subsystem.Concurrent, port string, i uint64) {
	t.Helper()
	sr, err := con.Search(port, key(i))
	if err != nil {
		t.Fatalf("search %s %d: %v", port, i, err)
	}
	if !sr.Found || sr.Record.Data != bitutil.FromUint64(i*3+1) {
		t.Fatalf("search %s %d: found=%v data=%v, want hit with %d", port, i, sr.Found, sr.Record.Data, i*3+1)
	}
}

func mustMiss(t *testing.T, con *subsystem.Concurrent, port string, i uint64) {
	t.Helper()
	sr, err := con.Search(port, key(i))
	if err != nil {
		t.Fatalf("search %s %d: %v", port, i, err)
	}
	if sr.Found {
		t.Fatalf("search %s %d: unexpected hit", port, i)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{
		{"always", SyncPolicy{Mode: SyncAlways}},
		{"never", SyncPolicy{Mode: SyncNever}},
		{"interval=50ms", SyncPolicy{Mode: SyncInterval, Interval: 50 * time.Millisecond}},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %+v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("round-trip %q -> %q", tc.in, got.String())
		}
	}
	for _, bad := range []string{"", "sometimes", "interval=", "interval=0", "interval=-1s"} {
		if _, err := ParseSyncPolicy(bad); err == nil {
			t.Errorf("ParseSyncPolicy(%q): no error", bad)
		}
	}
}

// TestAckedWritesSurviveCrash is the core durability contract: with
// sync=always every acknowledged mutation — inserts and the deletes
// that follow them — is on disk when the mutation call returns, so an
// abandoned (never-sealed) log replays to exactly the acknowledged
// state.
func TestAckedWritesSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	con, _, _ := openStack(t, dir, Options{Sync: SyncPolicy{Mode: SyncAlways}})
	for i := uint64(1); i <= 40; i++ {
		if err := con.Insert("db", rec(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(1); i <= 10; i++ {
		if err := con.Delete("db", key(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	// Simulated crash: the first stack is simply abandoned, no Seal, no
	// snapshot. Everything below must come from the log alone.

	con2, w2, res := openStack(t, dir, Options{Sync: SyncPolicy{Mode: SyncAlways}})
	if res.CleanShutdown {
		t.Fatal("crash recovery reported a clean shutdown")
	}
	if res.Replayed != 50 {
		t.Fatalf("Replayed = %d, want 50", res.Replayed)
	}
	if res.LastLSN != 50 {
		t.Fatalf("LastLSN = %d, want 50", res.LastLSN)
	}
	for i := uint64(1); i <= 10; i++ {
		mustMiss(t, con2, "db", i)
	}
	for i := uint64(11); i <= 40; i++ {
		mustHit(t, con2, "db", i)
	}

	// A sealed log is a clean recovery point: zero replay next boot.
	if err := w2.Seal(); err != nil {
		t.Fatalf("seal: %v", err)
	}
	con3, _, res3 := openStack(t, dir, Options{Sync: SyncPolicy{Mode: SyncAlways}})
	if !res3.CleanShutdown {
		t.Fatal("sealed log did not report clean shutdown")
	}
	if res3.Replayed != 50 {
		// No snapshot was ever taken, so the data still replays from
		// the log — but the seal marker must survive the reopen cycle.
		t.Fatalf("Replayed = %d, want 50", res3.Replayed)
	}
	mustHit(t, con3, "db", 20)
}

// TestSnapshotTruncatesAndGates: a snapshot bounds replay (records at
// or below its bound never re-apply) and prunes sealed segments.
func TestSnapshotTruncatesAndGates(t *testing.T) {
	dir := t.TempDir()
	con, w, _ := openStack(t, dir, Options{
		Sync:         SyncPolicy{Mode: SyncAlways},
		SegmentBytes: 256, // force a roll every few records
	})
	for i := uint64(1); i <= 30; i++ {
		if err := con.Insert("db", rec(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if st := w.Stats(); st.Segments < 3 {
		t.Fatalf("tiny segments did not roll: %d segments", st.Segments)
	}
	if err := w.Snapshot(con.SnapshotImage); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	st := w.Stats()
	if st.SnapshotLSN != 30 {
		t.Fatalf("SnapshotLSN = %d, want 30", st.SnapshotLSN)
	}
	if st.Segments != 1 {
		t.Fatalf("segments after snapshot = %d, want 1 (sealed history pruned)", st.Segments)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("on-disk segments = %v, want exactly the active one", segs)
	}
	// Writes after the snapshot land in the log tail and replay.
	for i := uint64(31); i <= 35; i++ {
		if err := con.Insert("db", rec(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Crash-abandon; recover from snapshot + tail.
	con2, _, res := openStack(t, dir, Options{Sync: SyncPolicy{Mode: SyncAlways}})
	if res.SnapshotLSN != 30 {
		t.Fatalf("recovered SnapshotLSN = %d, want 30", res.SnapshotLSN)
	}
	if res.Replayed != 5 {
		t.Fatalf("Replayed = %d, want 5 (only the post-snapshot tail)", res.Replayed)
	}
	for i := uint64(1); i <= 35; i++ {
		mustHit(t, con2, "db", i)
	}
}

// TestCreateDropReplay covers the roster records: engines created over
// the wire come back with their data, dropped bootstrap engines come
// back empty (flag engines are guaranteed present).
func TestCreateDropReplay(t *testing.T) {
	dir := t.TempDir()
	con, _, _ := openStack(t, dir, Options{Sync: SyncPolicy{Mode: SyncAlways}})
	if err := con.CreateEngine("ip", subsystem.LPMEngine,
		subsystem.TypedConfig{IndexBits: 6, Slots: 8}); err != nil {
		t.Fatalf("create: %v", err)
	}
	prefix := match.Record{
		Key:  bitutil.NewTernary(bitutil.FromUint64(0x0a000000), bitutil.FromUint64(0x00ffffff)),
		Data: bitutil.FromUint64(0x801),
	}
	if err := con.Insert("ip", prefix); err != nil {
		t.Fatalf("insert prefix: %v", err)
	}
	if err := con.Insert("db", rec(7)); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := con.DropEngine("db"); err != nil {
		t.Fatalf("drop: %v", err)
	}
	// Crash-abandon and recover with the same flag roster.
	con2, _, res := openStack(t, dir, Options{Sync: SyncPolicy{Mode: SyncAlways}})
	if res.RosterLSN == 0 {
		t.Fatal("RosterLSN not recovered")
	}
	sr, err := con2.Search("ip", bitutil.Exact(bitutil.FromUint64(0x0a123456)))
	if err != nil || !sr.Found || sr.Record.Data != bitutil.FromUint64(0x801) {
		t.Fatalf("lpm search after recovery: found=%v data=%v err=%v", sr.Found, sr.Record.Data, err)
	}
	// db was dropped: the flag engine is re-added, but empty.
	mustMiss(t, con2, "db", 7)
}

// TestRelaxedPoliciesFlushOnSeal: interval and never modes defer
// fsync, but Seal flushes everything — nothing acknowledged in the
// previous life goes missing after a graceful shutdown.
func TestRelaxedPoliciesFlushOnSeal(t *testing.T) {
	for _, pol := range []SyncPolicy{
		{Mode: SyncInterval, Interval: 5 * time.Millisecond},
		{Mode: SyncNever},
	} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			con, w, _ := openStack(t, dir, Options{Sync: pol})
			for i := uint64(1); i <= 20; i++ {
				if err := con.Insert("db", rec(i)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			if err := w.Seal(); err != nil {
				t.Fatalf("seal: %v", err)
			}
			con2, _, res := openStack(t, dir, Options{Sync: pol})
			if !res.CleanShutdown {
				t.Fatal("sealed log did not report clean shutdown")
			}
			for i := uint64(1); i <= 20; i++ {
				mustHit(t, con2, "db", i)
			}
		})
	}
}

// TestSealedLogRejectsWrites: a sealed log fails Append/Commit with
// ErrClosed instead of silently dropping mutations.
func TestSealedLogRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	_, w, _ := openStack(t, dir, Options{Sync: SyncPolicy{Mode: SyncAlways}})
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(subsystem.JournalEntry{Op: subsystem.JournalInsert, Engine: "db", Rec: rec(1)}); err == nil {
		t.Fatal("append after seal succeeded")
	}
}
