package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"caram/internal/subsystem"
)

// subsystemInsertEntry is a journal insert for an engine whose name
// length controls the record's framed size.
func subsystemInsertEntry(engine string, i uint64) subsystem.JournalEntry {
	return subsystem.JournalEntry{Op: subsystem.JournalInsert, Engine: engine, Rec: rec(i + 1)}
}

// buildTornLog writes one insert record per element of nameLens (the
// engine-name length varies the record size), fsyncs them, and returns
// the raw segment bytes plus the end offset of every frame. The log is
// deliberately never sealed — the file is a crash image.
func buildTornLog(t testing.TB, nameLens []int) ([]byte, []int64) {
	t.Helper()
	dir := t.TempDir()
	w, _, err := Recover(dir, nil, Options{Sync: SyncPolicy{Mode: SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i, n := range nameLens {
		e := subsystemInsertEntry(strings.Repeat("e", n), uint64(i))
		if last, err = w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(last); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	var bounds []int64
	off := int64(16)
	for off < int64(len(data)) {
		n := binary.LittleEndian.Uint32(data[off:])
		off += frameHeader + int64(n)
		bounds = append(bounds, off)
	}
	if len(bounds) != len(nameLens) || off != int64(len(data)) {
		t.Fatalf("frame walk found %d frames ending at %d, want %d frames ending at %d",
			len(bounds), off, len(nameLens), len(data))
	}
	return data, bounds
}

// recoverPrefix writes data (a possibly-truncated segment image) as a
// fresh log directory and recovers it, returning the result.
func recoverPrefix(t testing.TB, data []byte) *RecoverResult {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, res, err := Recover(dir, nil, Options{Sync: SyncPolicy{Mode: SyncAlways}})
	if err != nil {
		t.Fatalf("recover over %d bytes: %v", len(data), err)
	}
	return res
}

// TestTornTailEveryOffset is the exhaustive form of the torn-tail
// property: truncating the segment at EVERY byte offset recovers
// exactly the prefix of fully-framed records — a cut inside the header
// discards the file, a cut mid-frame truncates back to the last clean
// frame boundary, and a cut on a boundary is a clean (if unsealed)
// log. No cut may error, and no torn record may ever replay.
func TestTornTailEveryOffset(t *testing.T) {
	data, bounds := buildTornLog(t, []int{3, 40, 7, 120, 11})
	for cut := 0; cut <= len(data); cut++ {
		res := recoverPrefix(t, data[:cut])
		wantRecs := 0
		wantTrunc := cut
		if cut >= 16 {
			wantTrunc = cut - 16
			for _, b := range bounds {
				if int64(cut) >= b {
					wantRecs++
					wantTrunc = cut - int(b)
				}
			}
		}
		if res.LastLSN != uint64(wantRecs) {
			t.Fatalf("cut %d: LastLSN = %d, want %d", cut, res.LastLSN, wantRecs)
		}
		if res.TruncatedBytes != wantTrunc {
			t.Fatalf("cut %d: TruncatedBytes = %d, want %d", cut, res.TruncatedBytes, wantTrunc)
		}
		if res.CleanShutdown {
			t.Fatalf("cut %d: unsealed log reported clean shutdown", cut)
		}
	}
}

// TestTornTailQuick drives the same property over randomized record
// sizes (testing/quick): whatever the framing layout, a cut inside the
// final record recovers exactly the n-1 records before it.
func TestTornTailQuick(t *testing.T) {
	f := func(rawLens [4]uint8, cutSeed uint16) bool {
		lens := make([]int, len(rawLens))
		for i, b := range rawLens {
			lens[i] = int(b)%80 + 1
		}
		data, bounds := buildTornLog(t, lens)
		last := bounds[len(bounds)-2] // end of the penultimate record
		span := int64(len(data)) - last
		cut := last + int64(cutSeed)%span
		res := recoverPrefix(t, data[:cut])
		return res.LastLSN == uint64(len(lens)-1) &&
			res.TruncatedBytes == int(cut-last) &&
			!res.CleanShutdown
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailSecondBootIsClean: after recovery truncated a torn tail,
// the next boot sees a byte-clean log — recovery repaired, not just
// tolerated.
func TestTornTailSecondBootIsClean(t *testing.T) {
	data, bounds := buildTornLog(t, []int{5, 9, 30})
	cut := bounds[2] - 7 // mid final record
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	w, res, err := Recover(dir, nil, Options{Sync: SyncPolicy{Mode: SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	if res.LastLSN != 2 || res.TruncatedBytes == 0 {
		t.Fatalf("first boot: LastLSN=%d TruncatedBytes=%d", res.LastLSN, res.TruncatedBytes)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	_, res2, err := Recover(dir, nil, Options{Sync: SyncPolicy{Mode: SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.TruncatedBytes != 0 || !res2.CleanShutdown || res2.LastLSN <= 2 {
		t.Fatalf("second boot not clean: %+v", res2)
	}
}
