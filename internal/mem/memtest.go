package mem

import "fmt"

// RAM-mode memory testing (§3.2: "various hardware- and software-based
// memory tests will be performed on CA-RAM using this RAM mode"). The
// classic March C- algorithm detects stuck-at, transition, and
// coupling faults; FlipBit injects faults so the test itself can be
// exercised.

// FlipBit inverts one stored bit — a transient-fault injection hook
// (a "soft error"). It charges no accesses: the fault happens, it is
// not an operation.
func (a *Array) FlipBit(wordAddr int, bit uint) {
	if wordAddr < 0 || wordAddr >= len(a.data) || bit > 63 {
		panic(fmt.Sprintf("mem: FlipBit(%d, %d) out of range", wordAddr, bit))
	}
	a.data[wordAddr] ^= 1 << bit
}

// SetStuckAt installs a permanent stuck-at fault: every subsequent
// write to the word forces the bit to value. The current contents are
// forced immediately too.
func (a *Array) SetStuckAt(wordAddr int, bit, value uint) {
	if wordAddr < 0 || wordAddr >= len(a.data) || bit > 63 {
		panic(fmt.Sprintf("mem: SetStuckAt(%d, %d) out of range", wordAddr, bit))
	}
	if a.stuck == nil {
		a.stuck = make(map[int][]stuckBit)
	}
	a.stuck[wordAddr] = append(a.stuck[wordAddr], stuckBit{bit: bit, val: value & 1})
	a.data[wordAddr] = applyStuck(a.data[wordAddr], a.stuck[wordAddr])
}

// ClearFaults removes all installed stuck-at faults (stored values are
// left as-is).
func (a *Array) ClearFaults() { a.stuck = nil }

type stuckBit struct {
	bit uint
	val uint
}

func applyStuck(v uint64, faults []stuckBit) uint64 {
	for _, f := range faults {
		v = v&^(1<<f.bit) | uint64(f.val)<<f.bit
	}
	return v
}

// MarchError describes the first fault a march test detects.
type MarchError struct {
	Phase    string
	WordAddr int
	Want     uint64
	Got      uint64
}

// Error renders the fault.
func (e *MarchError) Error() string {
	return fmt.Sprintf("mem: march %s: word %d reads %#x, want %#x",
		e.Phase, e.WordAddr, e.Got, e.Want)
}

// MarchCMinus runs the March C- test over the array's RAM-mode address
// space with the given background pattern (classically 0, with the
// complement pattern derived from it):
//
//	⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)
//
// It returns nil when the array is fault-free, or the first detected
// fault. The array's contents are left as the background pattern.
func (a *Array) MarchCMinus(background uint64) error {
	n := len(a.data)
	zero, one := background, ^background
	// ⇕(w0)
	for i := 0; i < n; i++ {
		a.WriteWord(i, zero)
	}
	// ⇑(r0, w1)
	for i := 0; i < n; i++ {
		if got := a.ReadWord(i); got != zero {
			return &MarchError{Phase: "up r0w1", WordAddr: i, Want: zero, Got: got}
		}
		a.WriteWord(i, one)
	}
	// ⇑(r1, w0)
	for i := 0; i < n; i++ {
		if got := a.ReadWord(i); got != one {
			return &MarchError{Phase: "up r1w0", WordAddr: i, Want: one, Got: got}
		}
		a.WriteWord(i, zero)
	}
	// ⇓(r0, w1)
	for i := n - 1; i >= 0; i-- {
		if got := a.ReadWord(i); got != zero {
			return &MarchError{Phase: "down r0w1", WordAddr: i, Want: zero, Got: got}
		}
		a.WriteWord(i, one)
	}
	// ⇓(r1, w0)
	for i := n - 1; i >= 0; i-- {
		if got := a.ReadWord(i); got != one {
			return &MarchError{Phase: "down r1w0", WordAddr: i, Want: one, Got: got}
		}
		a.WriteWord(i, zero)
	}
	// ⇕(r0)
	for i := 0; i < n; i++ {
		if got := a.ReadWord(i); got != zero {
			return &MarchError{Phase: "final r0", WordAddr: i, Want: zero, Got: got}
		}
	}
	return nil
}
