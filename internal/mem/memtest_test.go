package mem

import (
	"errors"
	"testing"
)

func TestMarchCMinusCleanArray(t *testing.T) {
	a := MustNew(Config{Rows: 8, RowBits: 256})
	if err := a.MarchCMinus(0); err != nil {
		t.Fatalf("fault-free array failed: %v", err)
	}
	// Contents end as the background pattern.
	for i := 0; i < a.Words(); i++ {
		if a.data[i] != 0 {
			t.Fatalf("word %d = %#x after march", i, a.data[i])
		}
	}
	// Non-zero background too.
	if err := a.MarchCMinus(0xa5a5a5a5a5a5a5a5); err != nil {
		t.Fatalf("patterned march failed: %v", err)
	}
}

func TestMarchDetectsStuckAtZero(t *testing.T) {
	a := MustNew(Config{Rows: 4, RowBits: 128})
	a.SetStuckAt(5, 17, 0)
	err := a.MarchCMinus(0)
	if err == nil {
		t.Fatal("stuck-at-0 undetected")
	}
	var me *MarchError
	if !errors.As(err, &me) {
		t.Fatalf("error type %T", err)
	}
	if me.WordAddr != 5 {
		t.Errorf("fault located at word %d, want 5", me.WordAddr)
	}
}

func TestMarchDetectsStuckAtOne(t *testing.T) {
	a := MustNew(Config{Rows: 4, RowBits: 128})
	a.SetStuckAt(2, 0, 1)
	err := a.MarchCMinus(0)
	if err == nil {
		t.Fatal("stuck-at-1 undetected")
	}
	var me *MarchError
	if !errors.As(err, &me) || me.WordAddr != 2 {
		t.Fatalf("fault report = %v", err)
	}
	if me.Error() == "" {
		t.Error("empty error string")
	}
	// Cleared faults pass again.
	a.ClearFaults()
	if err := a.MarchCMinus(0); err != nil {
		t.Fatalf("march after ClearFaults: %v", err)
	}
}

func TestMarchDetectsEveryStuckPosition(t *testing.T) {
	// Exhaustive-ish: a stuck-at fault anywhere must be caught.
	for addr := 0; addr < 8; addr++ {
		for _, bit := range []uint{0, 31, 63} {
			for _, val := range []uint{0, 1} {
				a := MustNew(Config{Rows: 2, RowBits: 256})
				a.SetStuckAt(addr, bit, val)
				if err := a.MarchCMinus(0); err == nil {
					t.Errorf("stuck-at-%d at word %d bit %d undetected", val, addr, bit)
				}
			}
		}
	}
}

func TestFlipBit(t *testing.T) {
	a := MustNew(Config{Rows: 2, RowBits: 64})
	a.FlipBit(0, 3)
	if a.PeekRow(0)[0] != 8 {
		t.Errorf("word = %#x", a.PeekRow(0)[0])
	}
	a.FlipBit(0, 3)
	if a.PeekRow(0)[0] != 0 {
		t.Error("double flip did not restore")
	}
	for _, f := range []func(){
		func() { a.FlipBit(-1, 0) },
		func() { a.FlipBit(99, 0) },
		func() { a.FlipBit(0, 64) },
		func() { a.SetStuckAt(99, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range fault injection did not panic")
				}
			}()
			f()
		}()
	}
}

func TestStuckAtForcedImmediately(t *testing.T) {
	a := MustNew(Config{Rows: 2, RowBits: 64})
	a.WriteWord(1, ^uint64(0))
	a.SetStuckAt(1, 7, 0)
	if a.data[1]&(1<<7) != 0 {
		t.Error("existing contents not forced")
	}
	a.WriteWord(1, ^uint64(0))
	if a.data[1]&(1<<7) != 0 {
		t.Error("write overrode the stuck bit")
	}
}
