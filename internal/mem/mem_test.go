package mem

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Rows: 0, RowBits: 64},
		{Rows: -1, RowBits: 64},
		{Rows: 4, RowBits: 0},
		{Rows: 4, RowBits: 64, Timing: Timing{AccessCycles: -1, MinInterval: 1}},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
	if _, err := New(Config{Rows: 8, RowBits: 100}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDefaultTiming(t *testing.T) {
	a := MustNew(Config{Rows: 2, RowBits: 64, Tech: DRAM})
	if got := a.Config().Timing; got.MinInterval != 6 || got.AccessCycles != 6 {
		t.Errorf("DRAM timing = %+v", got)
	}
	b := MustNew(Config{Rows: 2, RowBits: 64, Tech: SRAM})
	if got := b.Config().Timing; got.MinInterval != 1 {
		t.Errorf("SRAM timing = %+v", got)
	}
}

func TestTechnologyString(t *testing.T) {
	if SRAM.String() != "SRAM" || DRAM.String() != "DRAM" {
		t.Error("Technology names wrong")
	}
	if Technology(9).String() == "" {
		t.Error("unknown technology should still render")
	}
}

func TestRowReadWrite(t *testing.T) {
	a := MustNew(Config{Rows: 4, RowBits: 130}) // 3 words per row
	a.WriteRow(2, []uint64{1, 2, 3})
	row := a.ReadRow(2)
	if len(row) != 3 || row[0] != 1 || row[1] != 2 || row[2] != 3 {
		t.Errorf("row = %v", row)
	}
	if got := a.ReadRow(1); got[0] != 0 {
		t.Error("neighbor row affected")
	}
	// Short write zero-fills.
	a.WriteRow(2, []uint64{9})
	row = a.PeekRow(2)
	if row[0] != 9 || row[1] != 0 || row[2] != 0 {
		t.Errorf("short write: row = %v", row)
	}
	// Long write truncates.
	a.WriteRow(2, []uint64{1, 2, 3, 4, 5})
	if a.PeekRow(3)[0] != 0 {
		t.Error("long write spilled into next row")
	}
}

func TestRowForUpdateMutates(t *testing.T) {
	a := MustNew(Config{Rows: 2, RowBits: 64})
	row := a.RowForUpdate(1)
	row[0] = 42
	if a.PeekRow(1)[0] != 42 {
		t.Error("RowForUpdate view is not live")
	}
}

func TestStatsAccounting(t *testing.T) {
	a := MustNew(Config{Rows: 4, RowBits: 64, Tech: DRAM})
	a.ReadRow(0)
	a.ReadRow(1)
	a.WriteRow(2, []uint64{7})
	a.ReadWord(0)
	a.WriteWord(1, 5)
	s := a.Stats()
	if s.RowReads != 2 || s.RowWrites != 1 || s.WordReads != 1 || s.WordWrites != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Accesses() != 3 {
		t.Errorf("Accesses = %d", s.Accesses())
	}
	if s.Cycles != 5*6 {
		t.Errorf("Cycles = %d, want 30", s.Cycles)
	}
	a.ResetStats()
	if a.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero")
	}
}

func TestPeekDoesNotCharge(t *testing.T) {
	a := MustNew(Config{Rows: 2, RowBits: 64})
	a.PeekRow(0)
	if a.Stats().Accesses() != 0 {
		t.Error("PeekRow charged an access")
	}
}

func TestClear(t *testing.T) {
	a := MustNew(Config{Rows: 2, RowBits: 64})
	a.WriteRow(0, []uint64{1})
	a.WriteRow(1, []uint64{2})
	a.ResetStats()
	a.Clear()
	if a.PeekRow(0)[0] != 0 || a.PeekRow(1)[0] != 0 {
		t.Error("Clear left data")
	}
	if a.Stats().Accesses() != 0 {
		t.Error("Clear charged accesses")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	a := MustNew(Config{Rows: 2, RowBits: 64})
	for name, f := range map[string]func(){
		"ReadRow":   func() { a.ReadRow(2) },
		"ReadWord":  func() { a.ReadWord(99) },
		"WriteWord": func() { a.WriteWord(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSizeAndWords(t *testing.T) {
	a := MustNew(Config{Rows: 16, RowBits: 1600})
	if a.SizeBits() != 16*1600 {
		t.Errorf("SizeBits = %d", a.SizeBits())
	}
	if a.Words() != 16*25 {
		t.Errorf("Words = %d", a.Words())
	}
	if a.Rows() != 16 || a.RowBits() != 1600 {
		t.Error("accessors wrong")
	}
}

// Property: word-mode writes land where row-mode reads see them.
func TestWordRowConsistencyQuick(t *testing.T) {
	a := MustNew(Config{Rows: 8, RowBits: 128}) // 2 words/row
	f := func(addrRaw uint8, v uint64) bool {
		addr := int(addrRaw) % a.Words()
		a.WriteWord(addr, v)
		row := a.PeekRow(uint32(addr / 2))
		return row[addr%2] == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
