// Package mem models the dense memory array at the heart of a CA-RAM
// slice (§3.1): 2^R rows of C bits each, implementable as SRAM or
// embedded DRAM. The array knows nothing about records or hashing — it
// stores raw bits, charges access counts/cycles, and exposes both the
// row-oriented interface the match processors consume and the flat
// word-oriented RAM-mode interface of §3.2 (scratch-pad / paged memory
// reuse).
package mem

import (
	"fmt"
	"sync/atomic"

	"caram/internal/bitutil"
)

// Technology selects the storage cell the array is built from. It
// drives timing defaults and, in the cost package, area and power.
type Technology int

// Supported storage technologies.
const (
	SRAM Technology = iota
	DRAM            // embedded DRAM (Morishita et al. style macro)
)

// String names the technology.
func (t Technology) String() string {
	switch t {
	case SRAM:
		return "SRAM"
	case DRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// Timing captures the two quantities §3.4 uses: the latency of one row
// access and nmem, the minimum number of cycles between back-to-back
// accesses (which bounds slice bandwidth as fclk/nmem).
type Timing struct {
	AccessCycles int // latency of one row access, in clock cycles
	MinInterval  int // nmem: min cycles between back-to-back accesses
}

// DefaultTiming returns the paper's working assumptions: single-cycle
// SRAM and a DRAM macro that needs at least 6 cycles per access (§4.3).
func DefaultTiming(t Technology) Timing {
	if t == DRAM {
		return Timing{AccessCycles: 6, MinInterval: 6}
	}
	return Timing{AccessCycles: 1, MinInterval: 1}
}

// Config describes an array.
type Config struct {
	Rows    int        // number of rows (buckets); need not be a power of two
	RowBits int        // C: bits per row
	Tech    Technology // storage technology
	Timing  Timing     // zero value = DefaultTiming(Tech)
}

// Stats accumulates the activity of an array. Cycles is the serial
// occupancy implied by MinInterval — the quantity that limits slice
// bandwidth.
type Stats struct {
	RowReads   uint64
	RowWrites  uint64
	WordReads  uint64
	WordWrites uint64
	Cycles     uint64
}

// counters is the internal atomic form of Stats: lock-free snapshot
// reads (TrySnapshotRow) charge accesses concurrently with the
// port-locked write side, so every counter must be an atomic cell.
type counters struct {
	rowReads   atomic.Uint64
	rowWrites  atomic.Uint64
	wordReads  atomic.Uint64
	wordWrites atomic.Uint64
	cycles     atomic.Uint64
}

// Accesses returns the total number of row-granularity accesses.
func (s Stats) Accesses() uint64 { return s.RowReads + s.RowWrites }

// RowFaultInjector intercepts charged row fetches — the narrow
// interface a soft-error model (internal/fault) implements. OnRowFetch
// may mutate row in place (bit flips land in the stored bits, exactly
// as a particle strike corrupts a cell), and reports whether the fetch
// delivered data (false models a transient row-read failure: the
// stored bits are intact but this access returned nothing usable) plus
// extra latency cycles (a latency spike) charged to the array's cycle
// counter.
type RowFaultInjector interface {
	OnRowFetch(idx uint32, row []uint64) (ok bool, extraCycles int)
}

// Array is a behavioral memory array. Mutation is single-writer: a
// CA-RAM slice owns exactly one array and the subsystem serializes all
// writes behind the slice's port lock, matching the hardware's single
// row port. Reads come in two flavors:
//
//   - port-locked reads (ReadRow, FetchRow, PeekRow) return aliases
//     into the storage and are safe only while the caller serializes
//     against writers (the classic path);
//   - lock-free snapshot reads (TrySnapshotRow) copy a row out under a
//     per-row seqlock — a version counter that is odd while a writer
//     is mutating the row and even once the new contents are
//     published. Writers go through BeginRowUpdate/CommitRowUpdate
//     (copy-mutate-publish on writer-owned scratch, every word stored
//     atomically inside the odd window), so a snapshot whose version
//     was even and unchanged across the copy is a complete published
//     row — never a torn mix of two writes.
//
// InstallFaults and the seqlock write protocol itself remain
// single-writer: only reads are wait-free.
type Array struct {
	cfg      Config
	rowWords int
	data     []uint64        // all rows, contiguous
	seq      []atomic.Uint32 // per-row seqlock: odd = mutating, even = published
	stats    counters
	stuck    map[int][]stuckBit // installed stuck-at faults
	inj      RowFaultInjector   // nil = perfect memory (the fast path)

	updBuf   []uint64 // BeginRowUpdate scratch (writer-owned)
	fetchBuf []uint64 // FetchRow scratch when an injector is installed
	pending  int64    // row index+1 of the open update window, 0 = none
}

// New validates the configuration and allocates the array, zero-filled.
func New(cfg Config) (*Array, error) {
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("mem: Rows must be positive, got %d", cfg.Rows)
	}
	if cfg.RowBits <= 0 {
		return nil, fmt.Errorf("mem: RowBits must be positive, got %d", cfg.RowBits)
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming(cfg.Tech)
	}
	if cfg.Timing.AccessCycles <= 0 || cfg.Timing.MinInterval <= 0 {
		return nil, fmt.Errorf("mem: timing cycles must be positive: %+v", cfg.Timing)
	}
	rw := bitutil.RowWords(cfg.RowBits)
	return &Array{
		cfg:      cfg,
		rowWords: rw,
		data:     make([]uint64, rw*cfg.Rows),
		seq:      make([]atomic.Uint32, cfg.Rows),
		updBuf:   make([]uint64, rw),
		fetchBuf: make([]uint64, rw),
	}, nil
}

// MustNew is New that panics on configuration error, for tests and
// examples with static configs.
func MustNew(cfg Config) *Array {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the array's configuration (with timing resolved).
func (a *Array) Config() Config { return a.cfg }

// Rows returns the number of rows.
func (a *Array) Rows() int { return a.cfg.Rows }

// RowBits returns C, the row width in bits.
func (a *Array) RowBits() int { return a.cfg.RowBits }

// SizeBits returns the total storage capacity in bits.
func (a *Array) SizeBits() int64 { return int64(a.cfg.Rows) * int64(a.cfg.RowBits) }

// ReadRow fetches one row, charging a read access. The returned slice
// aliases the array's storage and must be treated as read-only; use
// RowForUpdate to mutate. Port-locked path: callers must serialize
// against writers.
func (a *Array) ReadRow(idx uint32) []uint64 {
	a.stats.rowReads.Add(1)
	a.stats.cycles.Add(uint64(a.cfg.Timing.MinInterval))
	return a.row(idx)
}

// InstallFaults attaches a fault injector to the array's fetch path
// (FetchRow). nil detaches it. With no injector installed FetchRow is
// ReadRow plus one predictable nil-check branch, so the lookup hot
// path keeps its zero-allocation guarantee.
func (a *Array) InstallFaults(inj RowFaultInjector) { a.inj = inj }

// FetchRow is ReadRow through the fault-injection hook: it charges a
// read access, then gives an installed injector the chance to corrupt
// the row, fail the fetch, or stretch its latency. ok=false is a
// transient row-read error — the storage is intact, but this access
// delivered nothing usable and the caller must retry or skip.
//
// Without an injector the returned slice aliases the array's storage
// (zero-copy hot path). With one installed, the injector corrupts a
// fetch-scratch copy and any flipped bits are published back into
// storage through the row's seqlock window — the stored bits end up
// corrupted exactly as before, but lock-free snapshot readers never
// observe a half-applied strike. Port-locked path either way.
func (a *Array) FetchRow(idx uint32) ([]uint64, bool) {
	a.stats.rowReads.Add(1)
	a.stats.cycles.Add(uint64(a.cfg.Timing.MinInterval))
	row := a.row(idx)
	if a.inj == nil {
		return row, true
	}
	copy(a.fetchBuf, row)
	ok, extra := a.inj.OnRowFetch(idx, a.fetchBuf)
	a.stats.cycles.Add(uint64(extra))
	for w := range row {
		if a.fetchBuf[w] != row[w] {
			a.publishRow(idx, a.fetchBuf)
			break
		}
	}
	return a.fetchBuf, ok
}

// PeekRow returns a row without charging an access — for assertions,
// dumps and tests only.
func (a *Array) PeekRow(idx uint32) []uint64 { return a.row(idx) }

// RowForUpdate returns a mutable view of a row and charges a write
// access. Hardware performs read-modify-write on a row granularity, so
// a single charge is the right model for an insert or delete.
//
// Legacy port-locked mutator: writes land in storage as plain stores,
// invisible to the seqlock, so it must not be used on arrays that
// serve lock-free snapshot readers — those writers go through
// BeginRowUpdate/CommitRowUpdate instead.
func (a *Array) RowForUpdate(idx uint32) []uint64 {
	a.stats.rowWrites.Add(1)
	a.stats.cycles.Add(uint64(a.cfg.Timing.MinInterval))
	return a.row(idx)
}

// BeginRowUpdate opens a row's seqlock write window, charging a write
// access: the version counter goes odd and the live contents are
// copied into writer-owned scratch, which is returned for mutation.
// The caller mutates the scratch and then publishes it with
// CommitRowUpdate; lock-free snapshot readers that observe the odd
// version (or a version change) retry, so they never see the mutation
// half-applied. Only one window may be open at a time (single-writer),
// and the caller must already serialize against all other writers.
func (a *Array) BeginRowUpdate(idx uint32) []uint64 {
	a.stats.rowWrites.Add(1)
	a.stats.cycles.Add(uint64(a.cfg.Timing.MinInterval))
	return a.beginRow(idx)
}

// BeginRowMaint is BeginRowUpdate without the write charge, for
// maintenance mutations the access model does not price (reach
// metadata updates, scrub restores — the paper's out-of-band host
// maintenance).
func (a *Array) BeginRowMaint(idx uint32) []uint64 {
	return a.beginRow(idx)
}

func (a *Array) beginRow(idx uint32) []uint64 {
	if a.pending != 0 {
		panic(fmt.Sprintf("mem: row update window already open on row %d", a.pending-1))
	}
	a.pending = int64(idx) + 1
	a.seq[idx].Add(1) // even -> odd: readers now retry
	copy(a.updBuf, a.row(idx))
	return a.updBuf
}

// CommitRowUpdate publishes the scratch returned by BeginRowUpdate /
// BeginRowMaint: every word is stored atomically, then the version
// counter returns to even. A snapshot read that raced the window sees
// a version change and retries; one that missed it entirely sees
// either the old or the new row, never a mix.
func (a *Array) CommitRowUpdate(idx uint32) {
	if a.pending != int64(idx)+1 {
		panic(fmt.Sprintf("mem: CommitRowUpdate(%d) without matching begin", idx))
	}
	a.pending = 0
	row := a.row(idx)
	for w := range row {
		atomic.StoreUint64(&row[w], a.updBuf[w])
	}
	a.seq[idx].Add(1) // odd -> even: published
}

// PublishRow atomically replaces a row's contents inside a seqlock
// window without charging an access — the in-place correction path of
// scrub-on-read error coding (the "write" is the memory controller's,
// not the application's). src must not alias the update scratch.
func (a *Array) PublishRow(idx uint32, src []uint64) {
	a.publishRow(idx, src)
}

func (a *Array) publishRow(idx uint32, src []uint64) {
	row := a.row(idx)
	a.seq[idx].Add(1)
	for w := range row {
		atomic.StoreUint64(&row[w], src[w])
	}
	a.seq[idx].Add(1)
}

// RowVersion returns a row's current seqlock version (odd while a
// write window is open). Exposed for tests that pin the publication
// protocol.
func (a *Array) RowVersion(idx uint32) uint32 { return a.seq[idx].Load() }

// TrySnapshotRow copies one row into dst (len >= the row's word count)
// without taking any lock, charging a read access on success. It fails
// — returning false, copying garbage at worst — when a writer's seqlock
// window overlapped the copy; the caller retries or escalates to the
// port-locked path. A true return guarantees dst is a complete
// published row: the version was even before the copy and unchanged
// after it.
func (a *Array) TrySnapshotRow(idx uint32, dst []uint64) bool {
	row := a.row(idx)
	v1 := a.seq[idx].Load()
	if v1&1 != 0 {
		return false
	}
	for w := range row {
		dst[w] = atomic.LoadUint64(&row[w])
	}
	if a.seq[idx].Load() != v1 {
		return false
	}
	a.stats.rowReads.Add(1)
	a.stats.cycles.Add(uint64(a.cfg.Timing.MinInterval))
	return true
}

// TryPeekRow is TrySnapshotRow without the access charge — the
// lock-free counterpart of PeekRow, for uncharged inspection paths
// (Contains) that must still never observe a torn row.
func (a *Array) TryPeekRow(idx uint32, dst []uint64) bool {
	row := a.row(idx)
	v1 := a.seq[idx].Load()
	if v1&1 != 0 {
		return false
	}
	for w := range row {
		dst[w] = atomic.LoadUint64(&row[w])
	}
	return a.seq[idx].Load() == v1
}

// RowWords returns the number of 64-bit words per row — the minimum
// buffer length for TrySnapshotRow.
func (a *Array) RowWords() int { return a.rowWords }

// WriteRow replaces a row's contents, charging a write access. Data
// longer than the row is truncated; shorter data zero-fills the rest.
func (a *Array) WriteRow(idx uint32, data []uint64) {
	row := a.RowForUpdate(idx)
	n := copy(row, data)
	for i := n; i < len(row); i++ {
		row[i] = 0
	}
}

func (a *Array) row(idx uint32) []uint64 {
	if int(idx) >= a.cfg.Rows {
		panic(fmt.Sprintf("mem: row %d out of range (rows=%d)", idx, a.cfg.Rows))
	}
	off := int(idx) * a.rowWords
	return a.data[off : off+a.rowWords : off+a.rowWords]
}

// ReadWord implements RAM-mode word access: the array viewed as a flat
// scratch-pad of 64-bit words.
func (a *Array) ReadWord(addr int) uint64 {
	if addr < 0 || addr >= len(a.data) {
		panic(fmt.Sprintf("mem: word address %d out of range", addr))
	}
	a.stats.wordReads.Add(1)
	a.stats.cycles.Add(uint64(a.cfg.Timing.MinInterval))
	return a.data[addr]
}

// WriteWord implements RAM-mode word write. The store goes through the
// owning row's seqlock window, so a bulk image load interleaved with
// lock-free snapshot readers yields per-row-consistent intermediate
// states.
func (a *Array) WriteWord(addr int, v uint64) {
	if addr < 0 || addr >= len(a.data) {
		panic(fmt.Sprintf("mem: word address %d out of range", addr))
	}
	a.stats.wordWrites.Add(1)
	a.stats.cycles.Add(uint64(a.cfg.Timing.MinInterval))
	if faults, ok := a.stuck[addr]; ok {
		v = applyStuck(v, faults)
	}
	idx := uint32(addr / a.rowWords)
	a.seq[idx].Add(1)
	atomic.StoreUint64(&a.data[addr], v)
	a.seq[idx].Add(1)
}

// Words returns the flat word count of the array (RAM-mode address
// space size).
func (a *Array) Words() int { return len(a.data) }

// Clear zeroes the entire array without charging accesses (models a
// bulk initialization/DMA fill, §3.2), row by row through the seqlock
// so concurrent snapshot readers see each row either full or empty.
func (a *Array) Clear() {
	for r := 0; r < a.cfg.Rows; r++ {
		idx := uint32(r)
		row := a.row(idx)
		a.seq[idx].Add(1)
		for w := range row {
			atomic.StoreUint64(&row[w], 0)
		}
		a.seq[idx].Add(1)
	}
}

// Stats returns a snapshot of accumulated activity. Counters are read
// atomically, so a snapshot taken under concurrent lock-free reads is
// monotone (never exceeds a later one) though not a single instant.
func (a *Array) Stats() Stats {
	return Stats{
		RowReads:   a.stats.rowReads.Load(),
		RowWrites:  a.stats.rowWrites.Load(),
		WordReads:  a.stats.wordReads.Load(),
		WordWrites: a.stats.wordWrites.Load(),
		Cycles:     a.stats.cycles.Load(),
	}
}

// ResetStats zeroes the activity counters.
func (a *Array) ResetStats() {
	a.stats.rowReads.Store(0)
	a.stats.rowWrites.Store(0)
	a.stats.wordReads.Store(0)
	a.stats.wordWrites.Store(0)
	a.stats.cycles.Store(0)
}
