// Package mem models the dense memory array at the heart of a CA-RAM
// slice (§3.1): 2^R rows of C bits each, implementable as SRAM or
// embedded DRAM. The array knows nothing about records or hashing — it
// stores raw bits, charges access counts/cycles, and exposes both the
// row-oriented interface the match processors consume and the flat
// word-oriented RAM-mode interface of §3.2 (scratch-pad / paged memory
// reuse).
package mem

import (
	"fmt"

	"caram/internal/bitutil"
)

// Technology selects the storage cell the array is built from. It
// drives timing defaults and, in the cost package, area and power.
type Technology int

// Supported storage technologies.
const (
	SRAM Technology = iota
	DRAM            // embedded DRAM (Morishita et al. style macro)
)

// String names the technology.
func (t Technology) String() string {
	switch t {
	case SRAM:
		return "SRAM"
	case DRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// Timing captures the two quantities §3.4 uses: the latency of one row
// access and nmem, the minimum number of cycles between back-to-back
// accesses (which bounds slice bandwidth as fclk/nmem).
type Timing struct {
	AccessCycles int // latency of one row access, in clock cycles
	MinInterval  int // nmem: min cycles between back-to-back accesses
}

// DefaultTiming returns the paper's working assumptions: single-cycle
// SRAM and a DRAM macro that needs at least 6 cycles per access (§4.3).
func DefaultTiming(t Technology) Timing {
	if t == DRAM {
		return Timing{AccessCycles: 6, MinInterval: 6}
	}
	return Timing{AccessCycles: 1, MinInterval: 1}
}

// Config describes an array.
type Config struct {
	Rows    int        // number of rows (buckets); need not be a power of two
	RowBits int        // C: bits per row
	Tech    Technology // storage technology
	Timing  Timing     // zero value = DefaultTiming(Tech)
}

// Stats accumulates the activity of an array. Cycles is the serial
// occupancy implied by MinInterval — the quantity that limits slice
// bandwidth.
type Stats struct {
	RowReads   uint64
	RowWrites  uint64
	WordReads  uint64
	WordWrites uint64
	Cycles     uint64
}

// Accesses returns the total number of row-granularity accesses.
func (s Stats) Accesses() uint64 { return s.RowReads + s.RowWrites }

// RowFaultInjector intercepts charged row fetches — the narrow
// interface a soft-error model (internal/fault) implements. OnRowFetch
// may mutate row in place (bit flips land in the stored bits, exactly
// as a particle strike corrupts a cell), and reports whether the fetch
// delivered data (false models a transient row-read failure: the
// stored bits are intact but this access returned nothing usable) plus
// extra latency cycles (a latency spike) charged to the array's cycle
// counter.
type RowFaultInjector interface {
	OnRowFetch(idx uint32, row []uint64) (ok bool, extraCycles int)
}

// Array is a behavioral memory array. It is not safe for concurrent
// mutation; a CA-RAM slice owns exactly one array, matching the
// hardware.
type Array struct {
	cfg      Config
	rowWords int
	data     []uint64 // all rows, contiguous
	stats    Stats
	stuck    map[int][]stuckBit // installed stuck-at faults
	inj      RowFaultInjector   // nil = perfect memory (the fast path)
}

// New validates the configuration and allocates the array, zero-filled.
func New(cfg Config) (*Array, error) {
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("mem: Rows must be positive, got %d", cfg.Rows)
	}
	if cfg.RowBits <= 0 {
		return nil, fmt.Errorf("mem: RowBits must be positive, got %d", cfg.RowBits)
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming(cfg.Tech)
	}
	if cfg.Timing.AccessCycles <= 0 || cfg.Timing.MinInterval <= 0 {
		return nil, fmt.Errorf("mem: timing cycles must be positive: %+v", cfg.Timing)
	}
	rw := bitutil.RowWords(cfg.RowBits)
	return &Array{
		cfg:      cfg,
		rowWords: rw,
		data:     make([]uint64, rw*cfg.Rows),
	}, nil
}

// MustNew is New that panics on configuration error, for tests and
// examples with static configs.
func MustNew(cfg Config) *Array {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the array's configuration (with timing resolved).
func (a *Array) Config() Config { return a.cfg }

// Rows returns the number of rows.
func (a *Array) Rows() int { return a.cfg.Rows }

// RowBits returns C, the row width in bits.
func (a *Array) RowBits() int { return a.cfg.RowBits }

// SizeBits returns the total storage capacity in bits.
func (a *Array) SizeBits() int64 { return int64(a.cfg.Rows) * int64(a.cfg.RowBits) }

// ReadRow fetches one row, charging a read access. The returned slice
// aliases the array's storage and must be treated as read-only; use
// RowForUpdate to mutate.
func (a *Array) ReadRow(idx uint32) []uint64 {
	a.stats.RowReads++
	a.stats.Cycles += uint64(a.cfg.Timing.MinInterval)
	return a.row(idx)
}

// InstallFaults attaches a fault injector to the array's fetch path
// (FetchRow). nil detaches it. With no injector installed FetchRow is
// ReadRow plus one predictable nil-check branch, so the lookup hot
// path keeps its zero-allocation guarantee.
func (a *Array) InstallFaults(inj RowFaultInjector) { a.inj = inj }

// FetchRow is ReadRow through the fault-injection hook: it charges a
// read access, then gives an installed injector the chance to corrupt
// the row, fail the fetch, or stretch its latency. ok=false is a
// transient row-read error — the storage is intact, but this access
// delivered nothing usable and the caller must retry or skip. The
// returned slice aliases the array's storage (a corrupted fetch has
// corrupted the stored bits; error-coding layers correct in place,
// scrub-on-read style).
func (a *Array) FetchRow(idx uint32) ([]uint64, bool) {
	a.stats.RowReads++
	a.stats.Cycles += uint64(a.cfg.Timing.MinInterval)
	row := a.row(idx)
	if a.inj == nil {
		return row, true
	}
	ok, extra := a.inj.OnRowFetch(idx, row)
	a.stats.Cycles += uint64(extra)
	return row, ok
}

// PeekRow returns a row without charging an access — for assertions,
// dumps and tests only.
func (a *Array) PeekRow(idx uint32) []uint64 { return a.row(idx) }

// RowForUpdate returns a mutable view of a row and charges a write
// access. Hardware performs read-modify-write on a row granularity, so
// a single charge is the right model for an insert or delete.
func (a *Array) RowForUpdate(idx uint32) []uint64 {
	a.stats.RowWrites++
	a.stats.Cycles += uint64(a.cfg.Timing.MinInterval)
	return a.row(idx)
}

// WriteRow replaces a row's contents, charging a write access. Data
// longer than the row is truncated; shorter data zero-fills the rest.
func (a *Array) WriteRow(idx uint32, data []uint64) {
	row := a.RowForUpdate(idx)
	n := copy(row, data)
	for i := n; i < len(row); i++ {
		row[i] = 0
	}
}

func (a *Array) row(idx uint32) []uint64 {
	if int(idx) >= a.cfg.Rows {
		panic(fmt.Sprintf("mem: row %d out of range (rows=%d)", idx, a.cfg.Rows))
	}
	off := int(idx) * a.rowWords
	return a.data[off : off+a.rowWords : off+a.rowWords]
}

// ReadWord implements RAM-mode word access: the array viewed as a flat
// scratch-pad of 64-bit words.
func (a *Array) ReadWord(addr int) uint64 {
	if addr < 0 || addr >= len(a.data) {
		panic(fmt.Sprintf("mem: word address %d out of range", addr))
	}
	a.stats.WordReads++
	a.stats.Cycles += uint64(a.cfg.Timing.MinInterval)
	return a.data[addr]
}

// WriteWord implements RAM-mode word write.
func (a *Array) WriteWord(addr int, v uint64) {
	if addr < 0 || addr >= len(a.data) {
		panic(fmt.Sprintf("mem: word address %d out of range", addr))
	}
	a.stats.WordWrites++
	a.stats.Cycles += uint64(a.cfg.Timing.MinInterval)
	if faults, ok := a.stuck[addr]; ok {
		v = applyStuck(v, faults)
	}
	a.data[addr] = v
}

// Words returns the flat word count of the array (RAM-mode address
// space size).
func (a *Array) Words() int { return len(a.data) }

// Clear zeroes the entire array without charging accesses (models a
// bulk initialization/DMA fill, §3.2).
func (a *Array) Clear() {
	for i := range a.data {
		a.data[i] = 0
	}
}

// Stats returns a snapshot of accumulated activity.
func (a *Array) Stats() Stats { return a.stats }

// ResetStats zeroes the activity counters.
func (a *Array) ResetStats() { a.stats = Stats{} }
