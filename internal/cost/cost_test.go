package cost

import (
	"math"
	"testing"
)

func TestCellAreas(t *testing.T) {
	// Published 130 nm values the model must carry verbatim.
	cases := map[CellKind]float64{
		TCAM16T: 9.00,
		TCAM8T:  4.79,
		TCAM6T:  3.59,
		EDRAM:   0.35,
	}
	for k, want := range cases {
		if got := CellAreaUm2(k); got != want {
			t.Errorf("%s area = %f, want %f", k, got, want)
		}
	}
	if CellAreaUm2(CellKind(99)) != 0 {
		t.Error("unknown kind should be 0")
	}
	for _, k := range []CellKind{TCAM16T, TCAM8T, TCAM6T, CAMStacked, EDRAM, SRAM6T} {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestCARAMCell(t *testing.T) {
	tern := CARAMCellUm2(EDRAM, true)
	if math.Abs(tern-2*0.35*MatchOverhead) > 1e-12 {
		t.Errorf("ternary cell = %f", tern)
	}
	bin := CARAMCellUm2(EDRAM, false)
	if bin >= tern {
		t.Error("binary cell should be half the ternary cell")
	}
}

// Figure 6(a): the paper reports CA-RAM over 12x smaller than 16T
// TCAM and 4.8x smaller than 6T TCAM.
func TestFig6aCellRatios(t *testing.T) {
	comp := Fig6Comparison(Default, DefaultFig6)
	rel := map[string]float64{}
	for _, c := range comp {
		rel[c.Name] = c.RelativeArea
	}
	if r := rel["16T SRAM TCAM"]; r < 12.0 || r > 12.1 {
		t.Errorf("16T relative area = %f, paper: >12x", r)
	}
	if r := rel["6T dynamic TCAM"]; r < 4.7 || r > 4.9 {
		t.Errorf("6T relative area = %f, paper: 4.8x", r)
	}
	if rel["CA-RAM (DRAM, ternary)"] != 1 {
		t.Error("CA-RAM not normalized to 1")
	}
	// Ordering: 16T > 8T > 6T > CA-RAM.
	if !(rel["16T SRAM TCAM"] > rel["8T dynamic TCAM"] &&
		rel["8T dynamic TCAM"] > rel["6T dynamic TCAM"] &&
		rel["6T dynamic TCAM"] > 1) {
		t.Errorf("area ordering violated: %+v", rel)
	}
}

// Figure 6(b): over 26x more power-efficient than 16T TCAM, over 7x
// than 6T TCAM.
func TestFig6bPowerRatios(t *testing.T) {
	comp := Fig6Comparison(Default, DefaultFig6)
	rel := map[string]float64{}
	for _, c := range comp {
		rel[c.Name] = c.RelativePower
	}
	if r := rel["16T SRAM TCAM"]; r < 24 || r > 29 {
		t.Errorf("16T relative power = %f, paper: >26x", r)
	}
	if r := rel["6T dynamic TCAM"]; r < 6.5 || r > 8.5 {
		t.Errorf("6T relative power = %f, paper: >7x", r)
	}
	if !(rel["16T SRAM TCAM"] > rel["8T dynamic TCAM"] &&
		rel["8T dynamic TCAM"] > rel["6T dynamic TCAM"] &&
		rel["6T dynamic TCAM"] > 1) {
		t.Errorf("power ordering violated: %+v", rel)
	}
}

// Figure 8, IP application with the paper's parameters: design D
// (R=12, C=64x64, 2 horizontal slices, alpha=0.36) in 8 vertical banks
// at 200 MHz vs a 143 MHz 6T TCAM holding 198,795 prefixes. Expected:
// ~45% area reduction, ~70% power saving.
func TestFig8IPPaperPoint(t *testing.T) {
	c := Fig8(Default, Fig8Params{
		App:            "IP lookup",
		BaselineKind:   TCAM6T,
		BaselineCells:  198795 * 32, // prefixes (incl. duplicates) x 32 symbols
		BaselineRateHz: 143e6,
		CapacityBits:   2 * 4096 * 4096, // 2 slices x 2^12 rows x 4096 bits
		LoadFactor:     0.36,
		BucketBits:     8192, // both horizontal slices fetched per search
		Slots:          128,
		CARAMRateHz:    143e6, // iso-throughput with the TCAM
		ComparePower:   true,
	})
	if c.AreaSavingPct < 40 || c.AreaSavingPct > 50 {
		t.Errorf("IP area saving = %.1f%%, paper: 45%%", c.AreaSavingPct)
	}
	if c.PowerSavingPct < 65 || c.PowerSavingPct > 75 {
		t.Errorf("IP power saving = %.1f%%, paper: 70%%", c.PowerSavingPct)
	}
	if !c.PowerCompared || c.Baseline != "TCAM" {
		t.Errorf("comparison = %+v", c)
	}
}

// Figure 8, trigram application: design A (4 vertical slices,
// alpha=0.86) vs a stacked-capacitor binary CAM holding all entries.
// Expected: ~5.9x area reduction; power not compared (the paper
// declines because the 1992 CAM lacks power-reduction techniques).
func TestFig8TrigramPaperPoint(t *testing.T) {
	c := Fig8(Default, Fig8Params{
		App:           "trigram lookup",
		BaselineKind:  CAMStacked,
		BaselineCells: 5385231 * 128, // entries x 128-bit keys
		CapacityBits:  4 * 16384 * 12288,
		LoadFactor:    0.86,
	})
	ratio := 1 / c.AreaRatio
	if ratio < 5.4 || ratio > 6.4 {
		t.Errorf("trigram area advantage = %.2fx, paper: 5.9x", ratio)
	}
	if c.PowerCompared {
		t.Error("trigram power must not be compared")
	}
	if c.Baseline != "CAM" {
		t.Errorf("baseline = %s", c.Baseline)
	}
}

func TestBandwidthFormulas(t *testing.T) {
	// B = Nslice/nmem * fclk: 8 slices, DRAM nmem=6, 200 MHz.
	b := CARAMBandwidth(8, 6, 200e6)
	if math.Abs(b-8.0/6.0*200e6) > 1 {
		t.Errorf("CA-RAM bandwidth = %f", b)
	}
	if CARAMBandwidth(1, 0, 200e6) != 0 {
		t.Error("nmem=0 should yield 0")
	}
	if CAMBandwidth(143e6) != 143e6 {
		t.Error("CAM bandwidth is its clock")
	}
	// The Figure 8 design point: 8 banks of DRAM CA-RAM at 200 MHz must
	// meet or beat the 143 MHz TCAM's bandwidth.
	if CARAMBandwidth(8, 6, 200e6) < CAMBandwidth(143e6) {
		t.Error("design D in 8 banks fails to match TCAM bandwidth")
	}
}

func TestPowerModelMonotonic(t *testing.T) {
	m := Default
	// More cells, more CAM power.
	if m.CAMSearchPower(TCAM6T, 2e6, 1e8) <= m.CAMSearchPower(TCAM6T, 1e6, 1e8) {
		t.Error("CAM power not monotonic in cells")
	}
	// Wider buckets, more CA-RAM power.
	if m.CARAMSearchPower(8192, 128, 1e6, 1e8) <= m.CARAMSearchPower(4096, 64, 1e6, 1e8) {
		t.Error("CA-RAM power not monotonic in bucket width")
	}
	// Zero search rate leaves only background power.
	bg := m.CARAMSearchPower(4096, 64, 1e6, 0)
	if bg != 1e6*m.BackgroundBit {
		t.Errorf("background power = %f", bg)
	}
}
