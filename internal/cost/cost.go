// Package cost implements the analytical area, power, and bandwidth
// models of §3.4, calibrated against the published 130 nm silicon the
// paper itself uses: Noda et al.'s 16T/8T/6T TCAM cells, Morishita et
// al.'s embedded DRAM macro, and Yamagata et al.'s stacked-capacitor
// binary CAM (optimistically scaled). The Figure 6 and Figure 8
// comparisons are computed from these models.
//
// Units: areas are µm² per cell; "cells" means ternary symbols for
// TCAM-style devices and bits for RAM/binary-CAM-style devices. Power
// is reported in arbitrary consistent units (1 unit = the per-search
// energy of one 16T TCAM cell, times searches/second); every experiment
// reports ratios, which are unit-free.
package cost

import "fmt"

// CellKind identifies a storage cell implementation.
type CellKind int

// Cell kinds with published implementations.
const (
	TCAM16T    CellKind = iota // 16T SRAM-based TCAM cell [Noda'03]
	TCAM8T                     // 8T dynamic TCAM cell [Noda'03]
	TCAM6T                     // 6T dynamic TCAM cell [Noda'05]
	CAMStacked                 // stacked-capacitor binary CAM [Yamagata'92], scaled
	EDRAM                      // embedded DRAM cell [Morishita'05]
	SRAM6T                     // conventional 6T SRAM cell, 130 nm
)

// String names the cell kind.
func (k CellKind) String() string {
	switch k {
	case TCAM16T:
		return "16T SRAM TCAM"
	case TCAM8T:
		return "8T dynamic TCAM"
	case TCAM6T:
		return "6T dynamic TCAM"
	case CAMStacked:
		return "stacked-capacitor CAM"
	case EDRAM:
		return "embedded DRAM"
	case SRAM6T:
		return "6T SRAM"
	default:
		return fmt.Sprintf("CellKind(%d)", int(k))
	}
}

// CellAreaUm2 returns the cell area in µm² at 130 nm. TCAM areas are
// per ternary symbol; EDRAM/SRAM areas are per bit; CAMStacked is per
// bit after the optimistic scaling DESIGN.md documents.
func CellAreaUm2(k CellKind) float64 {
	switch k {
	case TCAM16T:
		return 9.00
	case TCAM8T:
		return 4.79
	case TCAM6T:
		return 3.59
	case CAMStacked:
		return 6.23
	case EDRAM:
		return 0.35
	case SRAM6T:
		return 2.43
	default:
		return 0
	}
}

// Structural overhead factors (see DESIGN.md, "Calibration constants").
const (
	// MatchOverhead is the CA-RAM area overhead for its match
	// processors, derived from the prototype scaled to 130 nm (§3.4).
	MatchOverhead = 1.07
	// MacroCAM is the array-efficiency (periphery) factor for CAM and
	// TCAM macros.
	MacroCAM = 1.25
	// MacroDRAM is the corresponding factor for embedded-DRAM CA-RAM
	// (sense amps, decoders, index generator, match processors beyond
	// MatchOverhead's logic share).
	MacroDRAM = 3.5
	// MacroSRAM is the factor for SRAM-based CA-RAM.
	MacroSRAM = 2.0
)

// CARAMCellUm2 returns the effective CA-RAM storage cell area per
// symbol: binary symbols cost one RAM bit, ternary symbols two (the
// value/mask encoding), both carrying the match-processor overhead.
func CARAMCellUm2(base CellKind, ternary bool) float64 {
	bits := 1.0
	if ternary {
		bits = 2.0
	}
	return bits * CellAreaUm2(base) * MatchOverhead
}

// EnergyModel carries the per-search energy coefficients. The zero
// value is unusable; use Default.
type EnergyModel struct {
	// TCAMCell maps cell kinds to per-cell per-search energy,
	// normalized so TCAM16T = 1.
	TCAMCell map[CellKind]float64
	// Hash is the index-generation energy per search (P_hash).
	Hash float64
	// MemBit is the row-access energy per accessed bit (P_mem share).
	MemBit float64
	// MatchBit is the comparator energy per accessed bit (P_match).
	MatchBit float64
	// EncoderSlot is the priority-encoder energy per slot (P_encoder).
	EncoderSlot float64
	// BackgroundBit is DRAM standby/refresh power per stored bit
	// (units per second, independent of search rate).
	BackgroundBit float64
}

// Default is the calibrated model. With these coefficients the Figure 6
// configuration (1 Mi cells in 16 slices, 1600-bit rows, both devices
// at 143 MHz) yields CA-RAM power advantages of ~26x over 16T TCAM and
// ~7x over 6T TCAM, and the Figure 8 IP configuration yields ~70%
// power saving — the paper's reported values.
var Default = EnergyModel{
	TCAMCell: map[CellKind]float64{
		TCAM16T:    1.0,
		TCAM8T:     0.45,
		TCAM6T:     0.28,
		CAMStacked: 1.2, // no power-reduction techniques [Yamagata'92]
	},
	Hash:          500,
	MemBit:        4.0,
	MatchBit:      1.79,
	EncoderSlot:   10,
	BackgroundBit: 2.07e6,
}

// CAMSearchPower returns the power of a CAM/TCAM device searching at
// rate searches/second: every cell is activated on every search
// (O(w·n) match transistors), the defining cost of the approach.
func (m EnergyModel) CAMSearchPower(kind CellKind, cells float64, rate float64) float64 {
	return cells * m.TCAMCell[kind] * rate
}

// CARAMSearchPower returns the power of a CA-RAM searching at rate
// searches/second, per the §3.4 decomposition
// P = P_hash + P_mem(w,n) + P_match(n) + P_encoder(w), plus DRAM
// background power over the stored capacity. rowBits is the number of
// bits fetched and matched per search (the full bucket, across all
// horizontally-arranged slices); slots is S, the keys compared.
func (m EnergyModel) CARAMSearchPower(rowBits, slots float64, capacityBits float64, rate float64) float64 {
	perSearch := m.Hash + rowBits*(m.MemBit+m.MatchBit) + slots*m.EncoderSlot
	return perSearch*rate + capacityBits*m.BackgroundBit
}

// Bandwidth helpers (§3.4).

// CARAMBandwidth returns B = Nslice/nmem * fclk, the sustained search
// rate of nslice independently accessible slices with nmem cycles
// between back-to-back accesses.
func CARAMBandwidth(nslice, nmem int, fclkHz float64) float64 {
	if nmem <= 0 {
		return 0
	}
	return float64(nslice) / float64(nmem) * fclkHz
}

// CAMBandwidth returns B = f_CAM: one search per CAM clock.
func CAMBandwidth(fcamHz float64) float64 { return fcamHz }
