package cost

// The Figure 6 and Figure 8 computations. Figure 6 compares storage
// schemes on a fixed configuration (16 CA-RAM slices of 64K cells —
// 2^20 cells total — with the prototype's 1600-bit rows); Figure 8
// compares full application designs, which the iproute and trigram
// packages parameterize.

// Fig6Config is the §3.4 comparison configuration.
type Fig6Config struct {
	Cells   float64 // total ternary symbols (2 bits each in CA-RAM)
	RowBits float64 // bits fetched per CA-RAM search
	Slots   float64 // keys matched per CA-RAM search
	RateHz  float64 // search rate applied to every scheme
}

// DefaultFig6 mirrors the paper: one slice per 64K cells, 16 slices,
// 1600-bit rows holding 25 64-bit keys, searching at the TCAM's
// 143 MHz.
var DefaultFig6 = Fig6Config{
	Cells:   1 << 20,
	RowBits: 1600,
	Slots:   25,
	RateHz:  143e6,
}

// SchemeComparison is one bar of Figure 6: a scheme's absolute cell
// area and power, and both relative to ternary DRAM CA-RAM.
type SchemeComparison struct {
	Name          string
	CellUm2       float64
	RelativeArea  float64 // scheme / CA-RAM (Figure 6a)
	Power         float64
	RelativePower float64 // scheme / CA-RAM (Figure 6b)
}

// Fig6Comparison computes Figure 6(a) and 6(b) for the three published
// TCAM cells against a DRAM-based ternary CA-RAM.
func Fig6Comparison(m EnergyModel, cfg Fig6Config) []SchemeComparison {
	caramCell := CARAMCellUm2(EDRAM, true) // per ternary symbol
	// CA-RAM stores 2 bits per ternary symbol.
	caramPower := m.CARAMSearchPower(cfg.RowBits, cfg.Slots, 2*cfg.Cells, cfg.RateHz)
	out := []SchemeComparison{
		{
			Name:          "CA-RAM (DRAM, ternary)",
			CellUm2:       caramCell,
			RelativeArea:  1,
			Power:         caramPower,
			RelativePower: 1,
		},
	}
	for _, k := range []CellKind{TCAM6T, TCAM8T, TCAM16T} {
		p := m.CAMSearchPower(k, cfg.Cells, cfg.RateHz)
		out = append(out, SchemeComparison{
			Name:          k.String(),
			CellUm2:       CellAreaUm2(k),
			RelativeArea:  CellAreaUm2(k) / caramCell,
			Power:         p,
			RelativePower: p / caramPower,
		})
	}
	return out
}

// Area helpers for Figure 8.

// TCAMAreaMM2 returns the macro area of a TCAM holding the given
// number of ternary symbols.
func TCAMAreaMM2(symbols float64) float64 {
	return symbols * CellAreaUm2(TCAM6T) * MacroCAM / 1e6
}

// BinaryCAMAreaMM2 returns the macro area of a binary CAM holding the
// given number of bits.
func BinaryCAMAreaMM2(bits float64) float64 {
	return bits * CellAreaUm2(CAMStacked) * MacroCAM / 1e6
}

// CARAMAreaMM2 returns the macro area of a DRAM CA-RAM storing the
// given number of physical bits (ternary symbols already count 2 bits).
func CARAMAreaMM2(bits float64) float64 {
	return bits * CellAreaUm2(EDRAM) * MatchOverhead * MacroDRAM / 1e6
}

// CARAMLoadAdjustedAreaMM2 applies the paper's Figure 8 accounting:
// "we take into account the load factor for area calculation" — the
// array is charged only for the fraction it actually fills.
func CARAMLoadAdjustedAreaMM2(capacityBits, loadFactor float64) float64 {
	return CARAMAreaMM2(capacityBits * loadFactor)
}

// AppComparison is one application's Figure 8 pairing.
type AppComparison struct {
	App             string
	Baseline        string // "TCAM" or "CAM"
	BaselineAreaMM2 float64
	CARAMAreaMM2    float64
	AreaRatio       float64 // CA-RAM / baseline
	AreaSavingPct   float64 // 100*(1 - ratio)
	BaselinePower   float64
	CARAMPower      float64
	PowerSavingPct  float64 // 0 when the paper declines to compare
	PowerCompared   bool
}

// Fig8Params parameterizes one application comparison.
type Fig8Params struct {
	App            string
	BaselineKind   CellKind // TCAM6T or CAMStacked
	BaselineCells  float64  // symbols (TCAM) or bits (CAM)
	BaselineRateHz float64
	CapacityBits   float64 // CA-RAM physical capacity
	LoadFactor     float64
	BucketBits     float64 // bits fetched+matched per search
	Slots          float64 // keys compared per search
	CARAMRateHz    float64
	ComparePower   bool
}

// Fig8 computes one bar pair of Figure 8.
func Fig8(m EnergyModel, p Fig8Params) AppComparison {
	c := AppComparison{
		App:          p.App,
		Baseline:     "TCAM",
		CARAMAreaMM2: CARAMLoadAdjustedAreaMM2(p.CapacityBits, p.LoadFactor),
	}
	if p.BaselineKind == CAMStacked {
		c.Baseline = "CAM"
		c.BaselineAreaMM2 = BinaryCAMAreaMM2(p.BaselineCells)
	} else {
		c.BaselineAreaMM2 = TCAMAreaMM2(p.BaselineCells)
	}
	c.AreaRatio = c.CARAMAreaMM2 / c.BaselineAreaMM2
	c.AreaSavingPct = 100 * (1 - c.AreaRatio)
	if p.ComparePower {
		c.PowerCompared = true
		c.BaselinePower = m.CAMSearchPower(p.BaselineKind, p.BaselineCells, p.BaselineRateHz)
		c.CARAMPower = m.CARAMSearchPower(p.BucketBits, p.Slots, p.CapacityBits, p.CARAMRateHz)
		c.PowerSavingPct = 100 * (1 - c.CARAMPower/c.BaselinePower)
	}
	return c
}
