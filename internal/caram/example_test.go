package caram_test

import (
	"fmt"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/match"
	"caram/internal/mem"
)

// The canonical flow: configure a slice, store records, search.
func Example() {
	slice := caram.MustNew(caram.Config{
		IndexBits: 6,               // 64 buckets
		RowBits:   4*(1+32+16) + 8, // 4 slots: valid + 32b key + 16b data, + aux
		KeyBits:   32,
		DataBits:  16,
		Tech:      mem.DRAM,
		Index:     hash.NewMultShift(6),
	})
	_ = slice.Insert(match.Record{
		Key:  bitutil.Exact(bitutil.FromUint64(0xbeef)),
		Data: bitutil.FromUint64(1234),
	})
	res := slice.Lookup(bitutil.Exact(bitutil.FromUint64(0xbeef)))
	fmt.Println(res.Found, res.Record.Data.Uint64(), res.RowsRead)
	// Output: true 1234 1
}

// Ternary records give longest-prefix-match semantics: store masked
// keys, search with LookupBest scored by specificity.
func ExampleSlice_LookupBest() {
	slice := caram.MustNew(caram.Config{
		IndexBits: 2,
		RowBits:   4*(1+8+8+8) + 8,
		KeyBits:   8,
		DataBits:  8,
		Ternary:   true,
		Index:     hash.NewBitSelect([]int{6, 7}),
	})
	short, _ := bitutil.ParseTernary("11XXXXXX")
	long, _ := bitutil.ParseTernary("1100XXXX")
	_ = slice.Insert(match.Record{Key: short, Data: bitutil.FromUint64(1)})
	_ = slice.Insert(match.Record{Key: long, Data: bitutil.FromUint64(2)})

	res := slice.LookupBest(
		bitutil.Exact(bitutil.FromUint64(0b11001010)),
		func(r match.Record) int { return r.Key.Specificity(8) },
	)
	fmt.Println(res.Record.Data.Uint64())
	// Output: 2
}

// Bulk evaluation streams the whole database through the match
// processors — here, counting records whose low nibble is 0x5.
func ExampleSlice_CountWhere() {
	slice := caram.MustNew(caram.Config{
		IndexBits: 4,
		RowBits:   8*(1+16+8) + 8,
		KeyBits:   16,
		DataBits:  8,
		Index:     hash.NewMultShift(4),
	})
	for i := 0; i < 64; i++ {
		_ = slice.Insert(match.Record{Key: bitutil.Exact(bitutil.FromUint64(uint64(i)))})
	}
	pattern := bitutil.NewTernary(
		bitutil.FromUint64(0x5),
		bitutil.Mask(16).AndNot(bitutil.FromUint64(0xf)), // care only about the low nibble
	)
	fmt.Println(slice.CountWhere(pattern))
	// Output: 4
}
