package caram

import (
	"bytes"
	"strings"
	"testing"

	"caram/internal/bitutil"
	"caram/internal/hash"
)

func TestImageSerializationRoundTrip(t *testing.T) {
	src := filledSlice(t, 200)
	var buf bytes.Buffer
	if err := src.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}

	dst := MustNew(src.Config())
	if err := dst.ReadImage(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Count() != src.Count() {
		t.Fatalf("count %d, want %d", dst.Count(), src.Count())
	}
	for i := 0; i < 200; i += 7 {
		res := dst.Lookup(bitutil.Exact(bitutil.FromUint64(uint64(i))))
		if !res.Found || res.Record.Data.Uint64() != uint64(i%100) {
			t.Fatalf("record %d lost over serialization", i)
		}
	}
	if msg := dst.Verify(); msg != "" {
		t.Errorf("Verify: %s", msg)
	}
}

func TestReadImageRejectsGarbageAndMismatch(t *testing.T) {
	s := filledSlice(t, 10)
	// Garbage stream.
	if err := s.ReadImage(strings.NewReader("not an image at all, sorry")); err == nil {
		t.Error("garbage accepted")
	}
	// Truncated stream.
	var buf bytes.Buffer
	if err := s.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()/2])
	if err := s.ReadImage(trunc); err == nil {
		t.Error("truncated image accepted")
	}
	// Geometry mismatch.
	var buf2 bytes.Buffer
	if err := s.WriteImage(&buf2); err != nil {
		t.Fatal(err)
	}
	bigger := MustNew(Config{
		IndexBits: 7,
		RowBits:   s.Config().RowBits,
		KeyBits:   s.Config().KeyBits,
		DataBits:  s.Config().DataBits,
		Index:     hash.LowBits(7),
	})
	if err := bigger.ReadImage(&buf2); err == nil {
		t.Error("geometry mismatch accepted")
	}
}
