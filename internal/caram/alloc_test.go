package caram

import (
	"testing"

	"caram/internal/bitutil"
	"caram/internal/match"
)

// TestLookupZeroAlloc guards the slice hot path: a Lookup — hash,
// row reads along the probe chain, word-parallel match — must not
// allocate, hit or miss. Run by `make alloc-guard` / `make ci`.
func TestLookupZeroAlloc(t *testing.T) {
	s := MustNew(smallConfig())
	for k := uint64(0); k < 40; k++ {
		if err := s.Insert(rec(k, k^0xaa)); err != nil && err != ErrExists {
			t.Fatal(err)
		}
	}
	hit := bitutil.Exact(bitutil.FromUint64(7))
	miss := bitutil.Exact(bitutil.FromUint64(0x9999))
	if n := testing.AllocsPerRun(200, func() {
		if !s.Lookup(hit).Found {
			t.Fatal("expected hit")
		}
		if s.Lookup(miss).Found {
			t.Fatal("expected miss")
		}
	}); n != 0 {
		t.Fatalf("Lookup allocated %.1f times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		s.LookupBest(hit, func(r match.Record) int { return int(r.Data.Uint64()) })
	}); n != 0 {
		t.Fatalf("LookupBest allocated %.1f times per run, want 0", n)
	}
}
