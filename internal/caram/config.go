// Package caram implements the paper's primary contribution: the
// CA-RAM slice of Figure 3 — an index generator, a dense memory array
// of 2^R rows by C bits, and a bank of parallel match processors —
// together with the CAM-mode operations (search, insert, delete), the
// RAM-mode view, linear-probing overflow handling driven by the per-row
// auxiliary field, and the statistics (AMAL, load factor, overflow
// rates) the paper's evaluation is built on.
package caram

import (
	"errors"
	"fmt"

	"caram/internal/hash"
	"caram/internal/match"
	"caram/internal/mem"
)

// Errors returned by slice operations.
var (
	// ErrFull means no empty slot was found within the probe limit —
	// the record must go to a separate overflow area (§3.2) or the
	// design needs more capacity.
	ErrFull = errors.New("caram: bucket chain full within probe limit")
	// ErrNotFound is returned by Delete and Update for absent keys.
	ErrNotFound = errors.New("caram: record not found")
	// ErrExists is returned by Insert when the exact key is already
	// stored and duplicates are not permitted.
	ErrExists = errors.New("caram: record already present")
)

// Config describes one CA-RAM slice.
type Config struct {
	// IndexBits is R; the array has 2^R rows (buckets).
	IndexBits int
	// TotalRows, when positive, overrides the power-of-two row count —
	// needed for vertically-arranged engines whose slice count is not a
	// power of two (e.g. Table 3's five-slice design B). The index
	// generator's output is reduced modulo TotalRows, so the generator
	// should produce many more bits than log2(TotalRows) to keep the
	// modulo bias negligible.
	TotalRows int
	// RowBits is C, the row width in bits.
	RowBits int
	// KeyBits is N, the search key width (1..128).
	KeyBits int
	// DataBits is the per-record data field width (0..128). Storing
	// data with the key eliminates the separate data-memory access.
	DataBits int
	// Ternary enables stored-key don't-care masks (2 bits per symbol).
	Ternary bool
	// AuxBits sizes the per-row auxiliary field holding the overflow
	// reach counter. Defaults to 8.
	AuxBits int
	// Tech selects SRAM or DRAM for the array.
	Tech mem.Technology
	// Timing overrides the technology's default timing when non-zero.
	Timing mem.Timing
	// MatchProcessors is P; 0 means one per slot.
	MatchProcessors int
	// ProbeLimit bounds linear probing (number of buckets examined
	// beyond the home bucket). 0 means up to Rows-1, i.e. unlimited;
	// NoProbing disables spilling entirely, so records that do not fit
	// in their home bucket return ErrFull for redirection to a separate
	// overflow area (§4.3).
	ProbeLimit int
	// Index is the index generator; its Bits() must equal IndexBits.
	Index hash.IndexGenerator
	// ECC enables per-row error coding at construction: a SECDED-style
	// check word per row verified on every charged fetch, single-bit
	// correction, quarantine of uncorrectable rows, and scrub recovery
	// (see ecc.go). EnableECC is the post-load form for slices built
	// from an image.
	ECC bool
	// AllowDuplicates permits inserting records with equal keys
	// (needed when a ternary key is duplicated across buckets shares a
	// slice with itself is NOT this — this is equal keys in one
	// bucket chain, used by multi-value databases).
	AllowDuplicates bool
}

// Validate checks the configuration, returning a descriptive error.
func (c Config) Validate() error {
	if c.Index == nil {
		return errors.New("caram: Index generator is required")
	}
	if c.TotalRows > 0 {
		if c.TotalRows < 2 {
			return fmt.Errorf("caram: TotalRows %d too small", c.TotalRows)
		}
		if got := 1 << uint(c.Index.Bits()); got < c.TotalRows {
			return fmt.Errorf("caram: index generator range %d below TotalRows %d", got, c.TotalRows)
		}
	} else {
		if c.IndexBits < 1 || c.IndexBits > 30 {
			return fmt.Errorf("caram: IndexBits %d outside [1,30]", c.IndexBits)
		}
		if c.Index.Bits() != c.IndexBits {
			return fmt.Errorf("caram: index generator produces %d bits, config wants %d",
				c.Index.Bits(), c.IndexBits)
		}
	}
	if c.ProbeLimit < 0 && c.ProbeLimit != NoProbing {
		return fmt.Errorf("caram: ProbeLimit %d negative", c.ProbeLimit)
	}
	return c.layout().Validate()
}

// layout derives the row layout from the config.
func (c Config) layout() match.Layout {
	aux := c.AuxBits
	if aux == 0 {
		aux = 8
	}
	return match.Layout{
		RowBits:  c.RowBits,
		KeyBits:  c.KeyBits,
		DataBits: c.DataBits,
		Ternary:  c.Ternary,
		AuxBits:  aux,
	}
}

// Rows returns the bucket count: TotalRows when set, else 2^R.
func (c Config) Rows() int {
	if c.TotalRows > 0 {
		return c.TotalRows
	}
	return 1 << uint(c.IndexBits)
}

// Slots returns S, the records per bucket.
func (c Config) Slots() int { return c.layout().Slots() }

// Capacity returns M*S, the total record capacity.
func (c Config) Capacity() int { return c.Rows() * c.Slots() }

// NoProbing, as Config.ProbeLimit, confines every record to its home
// bucket.
const NoProbing = -1

// probeLimit resolves the effective probe bound.
func (c Config) probeLimit() int {
	switch c.ProbeLimit {
	case 0:
		return c.Rows() - 1
	case NoProbing:
		return 0
	default:
		return c.ProbeLimit
	}
}
