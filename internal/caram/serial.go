package caram

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Portable database images (§3.2: "If the 'hashed' database already
// exists at other memory location or in hard disk, the construction of
// a CA-RAM database can be done via a series of memory copy operations
// or using an existing DMA mechanism"). WriteImage serializes the raw
// array plus a geometry header; ReadImage validates the header against
// the receiving slice and installs the image, rebuilding placement
// bookkeeping.

// imageMagic identifies a CA-RAM image stream.
const imageMagic = 0x4341_5241_4D31 // "CARAM1"

// imageHeader pins the geometry an image was built for.
type imageHeader struct {
	Magic    uint64
	Rows     uint64
	RowBits  uint64
	KeyBits  uint32
	DataBits uint32
	AuxBits  uint32
	Flags    uint32 // bit 0: ternary
	Words    uint64
}

func (s *Slice) header() imageHeader {
	h := imageHeader{
		Magic:    imageMagic,
		Rows:     uint64(s.cfg.Rows()),
		RowBits:  uint64(s.cfg.RowBits),
		KeyBits:  uint32(s.cfg.KeyBits),
		DataBits: uint32(s.cfg.DataBits),
		AuxBits:  uint32(s.layout.AuxBits),
		Words:    uint64(s.array.Words()),
	}
	if s.cfg.Ternary {
		h.Flags |= 1
	}
	return h
}

// WriteImage writes the slice's database image to w.
func (s *Slice) WriteImage(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, s.header()); err != nil {
		return fmt.Errorf("caram: writing image header: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, s.Image()); err != nil {
		return fmt.Errorf("caram: writing image body: %w", err)
	}
	return nil
}

// ReadImage loads an image produced by WriteImage into this slice. The
// geometries must match exactly; the index generator is assumed
// compatible (it is part of the application's contract, as the paper's
// host-computed hashed databases assume the CA-RAM's generator).
func (s *Slice) ReadImage(r io.Reader) error {
	var h imageHeader
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return fmt.Errorf("caram: reading image header: %w", err)
	}
	if h.Magic != imageMagic {
		return fmt.Errorf("caram: not a CA-RAM image (magic %#x)", h.Magic)
	}
	if want := s.header(); h != want {
		return fmt.Errorf("caram: image geometry %+v does not match slice %+v", h, want)
	}
	img := make([]uint64, h.Words)
	if err := binary.Read(r, binary.LittleEndian, img); err != nil {
		return fmt.Errorf("caram: reading image body: %w", err)
	}
	return s.LoadImage(img)
}
