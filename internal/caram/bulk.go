package caram

import (
	"fmt"
	"sort"

	"caram/internal/bitutil"
	"caram/internal/match"
)

// Massive data evaluation and modification (§1, §3.1): because the
// match logic is decoupled from the memory array, a CA-RAM can stream
// its rows through the match processors and evaluate or transform
// every matching record — the capability the paper contrasts against
// CAM, whose per-row logic does comparison only. Each row costs one
// read (plus one write when modified), so a whole-database pass is
// Rows() accesses regardless of the predicate.
//
// Scratch discipline: proc.Search returns a Result whose Vector
// aliases the processor's scratch (valid only until the next Search).
// Every loop below finishes consuming one row's Vector before
// searching the next row, so no Clone is needed; code that retains a
// Result across searches must call Result.Clone.

// CountWhere returns how many stored records match the (possibly
// masked) search key, streaming the whole array through the match
// processors.
func (s *Slice) CountWhere(search bitutil.Ternary) int {
	n := 0
	for b := 0; b < s.cfg.Rows(); b++ {
		row := s.logicalRow(uint32(b), s.array.ReadRow(uint32(b)))
		res := s.proc.Search(row, search)
		n += res.Count
	}
	return n
}

// SelectWhere returns every stored record matching the search key, in
// bucket/slot order.
func (s *Slice) SelectWhere(search bitutil.Ternary) []match.Record {
	var out []match.Record
	for b := 0; b < s.cfg.Rows(); b++ {
		row := s.logicalRow(uint32(b), s.array.ReadRow(uint32(b)))
		out = append(out, s.proc.SearchAll(row, search)...)
	}
	return out
}

// UpdateWhere applies fn to the data field of every record matching
// the search key, writing each modified row back once. It returns the
// number of records updated.
func (s *Slice) UpdateWhere(search bitutil.Ternary, fn func(match.Record) bitutil.Vec128) int {
	updated := 0
	for b := 0; b < s.cfg.Rows(); b++ {
		quar := s.Quarantined(uint32(b))
		row := s.logicalRow(uint32(b), s.array.ReadRow(uint32(b)))
		res := s.proc.Search(row, search)
		if res.Count == 0 {
			continue
		}
		// Quarantined rows are transformed in their shadow (row already
		// aliases it); in-service rows publish through the charged
		// seqlock write window.
		rewrite := func(wrow []uint64) error {
			for i := 0; i < s.layout.Slots(); i++ {
				if res.Vector[i/64]>>uint(i%64)&1 == 0 {
					continue
				}
				rec, _ := s.layout.ReadSlot(wrow, i)
				rec.Data = fn(rec)
				if err := s.layout.WriteSlot(wrow, i, rec); err != nil {
					// Unreachable: the record came from this layout.
					panic(fmt.Sprintf("caram: UpdateWhere rewrite: %v", err))
				}
				updated++
			}
			return nil
		}
		if quar {
			rewrite(row)
		} else {
			s.updateRow(uint32(b), true, rewrite)
		}
	}
	return updated
}

// DeleteWhere removes every record matching the search key and returns
// how many were removed. Placement bookkeeping is rebuilt afterwards,
// since bulk deletion invalidates the incremental spill counters.
func (s *Slice) DeleteWhere(search bitutil.Ternary) int {
	deleted := 0
	for b := 0; b < s.cfg.Rows(); b++ {
		quar := s.Quarantined(uint32(b))
		row := s.logicalRow(uint32(b), s.array.ReadRow(uint32(b)))
		res := s.proc.Search(row, search)
		if res.Count == 0 {
			continue
		}
		clear := func(wrow []uint64) error {
			for i := 0; i < s.layout.Slots(); i++ {
				if res.Vector[i/64]>>uint(i%64)&1 == 1 {
					s.layout.ClearSlot(wrow, i)
					deleted++
				}
			}
			return nil
		}
		if quar {
			clear(row)
		} else {
			s.updateRow(uint32(b), true, clear)
		}
	}
	if deleted > 0 {
		s.count -= deleted
		s.rebuildPlacement()
	}
	return deleted
}

// rebuildPlacement recomputes homeLoad/overflow/spilled from the
// array's contents. Valid only when every record's home is its key's
// index (i.e. not after foreign InsertAt placements).
func (s *Slice) rebuildPlacement() {
	for i := range s.homeLoad {
		s.homeLoad[i] = 0
		s.overflow[i] = false
	}
	s.spilled = 0
	if s.foreign {
		return // homes unknowable; leave counters cleared
	}
	rows := s.cfg.Rows()
	s.Records(func(bucket uint32, slot int, rec match.Record) bool {
		home := s.Index(rec.Key.Value)
		s.homeLoad[home]++
		if bucket != home {
			s.spilled++
			s.overflow[home] = true
			d := (int(bucket) - int(home) + rows) % rows
			s.raiseReach(home, uint64(d))
		}
		return true
	})
}

// BuildFromRecords bulk-loads a database: records are placed in
// priority order (descending score when score is non-nil, so the
// priority encoder resolves multi-matches the way the application
// wants) after clearing the slice. This is the §3.2 database
// construction path, the software analogue of a DMA fill. It returns
// the number of records that could not be placed.
func (s *Slice) BuildFromRecords(records []match.Record, score func(match.Record) int) int {
	s.Clear()
	ordered := append([]match.Record(nil), records...)
	if score != nil {
		sort.SliceStable(ordered, func(i, j int) bool { return score(ordered[i]) > score(ordered[j]) })
	}
	unplaced := 0
	for _, rec := range ordered {
		if err := s.Insert(rec); err != nil {
			unplaced++
		}
	}
	return unplaced
}

// Image returns a copy of the slice's raw storage — the bit-for-bit
// database image RAM mode exposes for DMA-style copies (§3.2).
func (s *Slice) Image() []uint64 {
	out := make([]uint64, s.array.Words())
	for w := 0; w < s.array.Words(); w++ {
		out[w] = s.array.ReadWord(w)
	}
	return out
}

// LogicalImage returns the slice's logical contents row by row — the
// same word layout as Image, except quarantined rows contribute their
// shadow contents (the §3.2 authoritative host-side copy) instead of
// the corrupt stored bits. This is the image durability snapshots
// persist: reloading it through LoadImage reconstructs the logical
// database even when rows were quarantined at capture time. Uncharged
// (PeekRow), like Records: serialization is host work, not a modeled
// memory access.
func (s *Slice) LogicalImage() []uint64 {
	rw := s.array.RowWords()
	out := make([]uint64, s.array.Words())
	for b := 0; b < s.cfg.Rows(); b++ {
		row := s.logicalRow(uint32(b), s.array.PeekRow(uint32(b)))
		copy(out[b*rw:(b+1)*rw], row)
	}
	return out
}

// LoadImage installs a raw storage image produced by Image on a slice
// with identical geometry, rebuilding the placement bookkeeping. The
// receiving slice must use the same layout and index generator for the
// counters to be meaningful.
func (s *Slice) LoadImage(img []uint64) error {
	if len(img) != s.array.Words() {
		return fmt.Errorf("caram: image of %d words for an array of %d", len(img), s.array.Words())
	}
	for w, v := range img {
		s.array.WriteWord(w, v)
	}
	if s.ecc != nil {
		// The image replaced every row wholesale: rebuild the check
		// words and shadow from the new contents.
		s.EnableECC()
	}
	s.count = 0
	s.Records(func(uint32, int, match.Record) bool { s.count++; return true })
	s.rebuildPlacement()
	return nil
}
