package caram

import (
	"math/bits"
	"testing"

	"caram/internal/bitutil"
	"caram/internal/match"
)

func eccConfig() Config {
	c := smallConfig()
	c.ECC = true
	return c
}

// corrupt flips bit pos of the stored row directly, bypassing the write
// paths that would sync the shadow — a soft error in storage.
func corrupt(s *Slice, idx uint32, pos int) {
	row := s.array.PeekRow(idx)
	row[pos>>6] ^= 1 << uint(pos&63)
}

// TestCheckWordProperties: single flips always change the parity bit
// and yield the flipped position's code as the syndrome delta; double
// flips preserve parity with a nonzero syndrome delta.
func TestCheckWordProperties(t *testing.T) {
	row := []uint64{0xdeadbeefcafef00d, 0x0123456789abcdef, 0xffff}
	base := checkWord(row)
	for pos := 0; pos < len(row)*64; pos++ {
		row[pos>>6] ^= 1 << uint(pos&63)
		delta := checkWord(row) ^ base
		if delta>>32&1 != 1 {
			t.Fatalf("pos %d: single flip kept parity", pos)
		}
		if got := uint32(delta); got != uint32(pos+1) {
			t.Fatalf("pos %d: syndrome delta %d, want %d", pos, got, pos+1)
		}
		row[pos>>6] ^= 1 << uint(pos&63)
	}
	for _, pair := range [][2]int{{0, 1}, {5, 70}, {63, 64}, {0, 191}} {
		row[pair[0]>>6] ^= 1 << uint(pair[0]&63)
		row[pair[1]>>6] ^= 1 << uint(pair[1]&63)
		delta := checkWord(row) ^ base
		if delta>>32&1 != 0 {
			t.Fatalf("pair %v: double flip changed parity", pair)
		}
		if uint32(delta) == 0 {
			t.Fatalf("pair %v: double flip invisible to syndrome", pair)
		}
		row[pair[0]>>6] ^= 1 << uint(pair[0]&63)
		row[pair[1]>>6] ^= 1 << uint(pair[1]&63)
	}
}

// TestEccCorrectsSingleBit: one flipped bit is corrected in place on
// the next lookup — the hit still lands and the counter advances.
func TestEccCorrectsSingleBit(t *testing.T) {
	s := MustNew(eccConfig())
	for i := 0; i < 20; i++ {
		if err := s.Insert(rec(uint64(i), uint64(100+i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	key := bitutil.Exact(bitutil.FromUint64(7))
	home := s.Index(key.Value)
	corrupt(s, home, 3)
	res := s.Lookup(key)
	if !res.Found || res.Erred {
		t.Fatalf("lookup after single flip: %+v", res)
	}
	st := s.EccStats()
	if st.CorrectedBits != 1 || st.Uncorrectable != 0 {
		t.Fatalf("ecc stats after single flip: %+v", st)
	}
	// Scrub-on-read wrote the correction back: next fetch is clean.
	s.Lookup(key)
	if st := s.EccStats(); st.CorrectedBits != 1 {
		t.Fatalf("correction not persisted: %+v", st)
	}
	if s.QuarantinedRows() != 0 {
		t.Fatal("single-bit error quarantined a row")
	}
}

// TestEccQuarantinesDoubleBit: a double flip is uncorrectable — the row
// leaves service, lookups report the distinct miss-with-error, and
// maintenance still sees the logical contents via the shadow.
func TestEccQuarantinesDoubleBit(t *testing.T) {
	s := MustNew(eccConfig())
	for i := 0; i < 20; i++ {
		if err := s.Insert(rec(uint64(i), uint64(100+i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	key := bitutil.Exact(bitutil.FromUint64(7))
	home := s.Index(key.Value)
	corrupt(s, home, 3)
	corrupt(s, home, 90)
	res := s.Lookup(key)
	if res.Found || !res.Erred {
		t.Fatalf("lookup after double flip: %+v", res)
	}
	st := s.EccStats()
	if st.Uncorrectable != 1 {
		t.Fatalf("ecc stats after double flip: %+v", st)
	}
	if s.QuarantinedRows() != 1 || !s.Quarantined(home) {
		t.Fatal("row not quarantined")
	}
	// Subsequent lookups skip the row without re-detecting.
	s.Lookup(key)
	st = s.EccStats()
	if st.Uncorrectable != 1 || st.QuarantineSkips == 0 {
		t.Fatalf("quarantine not sticky: %+v", st)
	}
	// The logical view survives: Contains and Records see the record.
	if !s.Contains(key) {
		t.Fatal("Contains lost the record during quarantine")
	}
	seen := false
	s.Records(func(b uint32, slot int, r match.Record) bool {
		if r.Key.Equal(key) {
			seen = true
		}
		return true
	})
	if !seen {
		t.Fatal("Records lost the record during quarantine")
	}
	if got := s.Stats().Erred; got != 2 {
		t.Fatalf("Erred lookups = %d, want 2", got)
	}
}

// TestScrubRestoresQuarantinedRow: scrub copies the shadow back,
// releases the quarantine, and the record is findable again. A delete
// issued during quarantine lands in the shadow, so the scrubbed row
// comes back without the deleted record.
func TestScrubRestoresQuarantinedRow(t *testing.T) {
	s := MustNew(eccConfig())
	for i := 0; i < 20; i++ {
		if err := s.Insert(rec(uint64(i), uint64(100+i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	key := bitutil.Exact(bitutil.FromUint64(7))
	home := s.Index(key.Value)
	corrupt(s, home, 3)
	corrupt(s, home, 90)
	if res := s.Lookup(key); res.Found {
		t.Fatal("corrupt row still hit")
	}
	// Delete a *different* record that lives in the same quarantined
	// bucket chain, if any shares the bucket; deleting key 7 itself is
	// the stronger test — it must succeed against the shadow.
	if err := s.Delete(key); err != nil {
		t.Fatalf("delete during quarantine: %v", err)
	}
	rep := s.Scrub()
	if rep.Released != 1 || rep.RepairedRows != 1 {
		t.Fatalf("scrub report: %+v", rep)
	}
	if s.QuarantinedRows() != 0 {
		t.Fatal("quarantine not released")
	}
	st := s.EccStats()
	if st.ScrubRepairedBits != 2 {
		t.Fatalf("ScrubRepairedBits = %d, want 2 (recorded at quarantine)", st.ScrubRepairedBits)
	}
	// The deleted record stays deleted; every other record is back.
	if res := s.Lookup(key); res.Found || res.Erred {
		t.Fatalf("deleted record resurrected by scrub: %+v", res)
	}
	for i := 0; i < 20; i++ {
		if i == 7 {
			continue
		}
		k := bitutil.Exact(bitutil.FromUint64(uint64(i)))
		if res := s.Lookup(k); !res.Found || res.Erred {
			t.Fatalf("record %d lost after scrub: %+v", i, res)
		}
	}
	if v := s.Verify(); v != "" {
		t.Fatalf("post-scrub verify: %s", v)
	}
}

// TestScrubRepairedBitsExcludesShadowWrites: legitimate writes landing
// in a quarantined row's shadow widen the raw restore diff, but the
// corrupt-bit ledger still reports exactly the bits the fault flipped.
func TestScrubRepairedBitsExcludesShadowWrites(t *testing.T) {
	s := MustNew(eccConfig())
	for i := 0; i < 8; i++ {
		if err := s.Insert(rec(uint64(i), uint64(100+i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	key := bitutil.Exact(bitutil.FromUint64(3))
	home := s.Index(key.Value)
	corrupt(s, home, 10)
	corrupt(s, home, 120)
	s.Lookup(key) // detect + quarantine
	if !s.Quarantined(home) {
		t.Fatal("row not quarantined")
	}
	// A shadow-side update changes many data bits (16-bit data field).
	if err := s.Update(key, bitutil.FromUint64(0xffff)); err != nil {
		t.Fatalf("update during quarantine: %v", err)
	}
	rep := s.Scrub()
	if rep.RepairedBits <= 2 {
		t.Fatalf("raw restore diff %d should exceed the 2 corrupt bits", rep.RepairedBits)
	}
	if st := s.EccStats(); st.ScrubRepairedBits != 2 {
		t.Fatalf("ScrubRepairedBits = %d, want 2", st.ScrubRepairedBits)
	}
	res := s.Lookup(key)
	if !res.Found || res.Record.Data.Lo != 0xffff {
		t.Fatalf("shadow-side update lost: %+v", res)
	}
}

// TestInsertSkipsQuarantinedRow: placement never lands a record in an
// out-of-service row; it spills past it and stays reachable.
func TestInsertSkipsQuarantinedRow(t *testing.T) {
	s := MustNew(eccConfig())
	// Quarantine bucket 5 (LowBits(4) of 0x505 is 5) by corrupting it
	// while a record is there.
	if err := s.Insert(rec(0x505, 1)); err != nil {
		t.Fatal(err)
	}
	corrupt(s, 5, 3)
	corrupt(s, 5, 80)
	s.Lookup(bitutil.Exact(bitutil.FromUint64(0x505)))
	if !s.Quarantined(5) {
		t.Fatal("bucket 5 not quarantined")
	}
	// New records homing at 5 (low nibble 5) must spill to bucket 6+.
	spillKeys := []uint64{0x15, 0x25, 0x35}
	for _, k := range spillKeys {
		if err := s.Insert(rec(k, 2)); err != nil {
			t.Fatalf("insert during quarantine: %v", err)
		}
	}
	s.Records(func(b uint32, slot int, r match.Record) bool {
		if b == 5 && r.Key.Value.Lo != 0x505 {
			t.Fatalf("record %x placed into quarantined bucket", r.Key.Value.Lo)
		}
		return true
	})
	for _, k := range spillKeys {
		if res := s.Lookup(bitutil.Exact(bitutil.FromUint64(k))); !res.Found {
			t.Fatalf("spilled record %x unreachable: %+v", k, res)
		}
	}
}

// TestEnableECCAfterLoad: LoadImage on an ECC slice rebuilds checks and
// shadow from the new contents; EnableECC on a populated plain slice
// protects from that state onward.
func TestEnableECCAfterLoad(t *testing.T) {
	src := MustNew(smallConfig())
	for i := 0; i < 12; i++ {
		if err := src.Insert(rec(uint64(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	dst := MustNew(eccConfig())
	if err := dst.LoadImage(src.Image()); err != nil {
		t.Fatal(err)
	}
	// Every row must verify cleanly against its rebuilt check word.
	for i := 0; i < 12; i++ {
		k := bitutil.Exact(bitutil.FromUint64(uint64(i)))
		if res := dst.Lookup(k); !res.Found || res.Erred {
			t.Fatalf("record %d after LoadImage: %+v", i, res)
		}
	}
	if st := dst.EccStats(); st.CorrectedBits != 0 || st.Uncorrectable != 0 {
		t.Fatalf("rebuilt checks flagged clean rows: %+v", st)
	}
	// Late enablement on a populated slice.
	late := MustNew(smallConfig())
	for i := 0; i < 12; i++ {
		if err := late.Insert(rec(uint64(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	late.EnableECC()
	k := bitutil.Exact(bitutil.FromUint64(uint64(4)))
	corrupt(late, late.Index(k.Value), 2)
	if res := late.Lookup(k); !res.Found {
		t.Fatalf("late-enabled ECC failed to correct: %+v", res)
	}
	if st := late.EccStats(); st.CorrectedBits != 1 {
		t.Fatalf("late-enabled ECC stats: %+v", st)
	}
}

// TestEccOffIsInert: without ECC the new paths are pass-throughs —
// no stats, no quarantine, Scrub reports zero.
func TestEccOffIsInert(t *testing.T) {
	s := MustNew(smallConfig())
	if err := s.Insert(rec(1, 2)); err != nil {
		t.Fatal(err)
	}
	if s.EccEnabled() {
		t.Fatal("ECC on by default")
	}
	if rep := s.Scrub(); rep != (ScrubReport{}) {
		t.Fatalf("Scrub on plain slice: %+v", rep)
	}
	if st := s.EccStats(); st != (EccStats{}) {
		t.Fatalf("EccStats on plain slice: %+v", st)
	}
	if s.QuarantinedRows() != 0 {
		t.Fatal("phantom quarantine")
	}
}

// sanity guard for the bit helpers this file leans on
var _ = bits.OnesCount64
