package caram

import (
	"fmt"
	"sync/atomic"

	"caram/internal/bitutil"
	"caram/internal/match"
	"caram/internal/mem"
	"caram/internal/trace"
)

// Slice is one CA-RAM slice (Figure 3). It owns its memory array and
// match processors; higher-level structure (multiple slices, overflow
// areas, request queues) lives in the subsystem package.
//
// Concurrency: all mutation (and the classic Lookup* methods, which
// share the processor's scratch) must be serialized by the caller,
// exactly as the hardware's single row port does. Lock-free lookups
// are available through per-goroutine Readers (NewReader): every write
// path publishes rows through the array's per-row seqlock, so any
// number of Readers may search concurrently with the single
// serialized writer. Construction — including the first EnableECC and
// InstallFaults — must complete before Readers start.
type Slice struct {
	cfg    Config
	layout match.Layout
	array  *mem.Array
	proc   *match.Processor

	count    int     // records stored
	homeLoad []int32 // records hashing to each bucket (pre-spill), Figure 7's quantity
	overflow []bool  // buckets from which at least one record spilled
	spilled  int     // records placed outside their home bucket
	foreign  bool    // InsertAt was used with a home != Index(key)
	stats    sliceStats
	ecc      *eccState // nil = unprotected memory (see ecc.go)
}

// New builds a slice from a validated configuration.
func New(cfg Config) (*Slice, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layout := cfg.layout()
	array, err := mem.New(mem.Config{
		Rows:    cfg.Rows(),
		RowBits: cfg.RowBits,
		Tech:    cfg.Tech,
		Timing:  cfg.Timing,
	})
	if err != nil {
		return nil, err
	}
	s := &Slice{
		cfg:      cfg,
		layout:   layout,
		array:    array,
		proc:     match.NewProcessor(layout, cfg.MatchProcessors),
		homeLoad: make([]int32, cfg.Rows()),
		overflow: make([]bool, cfg.Rows()),
	}
	if cfg.ECC {
		s.EnableECC()
	}
	return s, nil
}

// MustNew is New that panics on error, for static configurations.
func MustNew(cfg Config) *Slice {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the slice configuration.
func (s *Slice) Config() Config { return s.cfg }

// Layout returns the row layout.
func (s *Slice) Layout() match.Layout { return s.layout }

// Array exposes the underlying memory array — the RAM-mode view of
// §3.2 (scratch-pad access, bulk database construction, memory tests).
func (s *Slice) Array() *mem.Array { return s.array }

// Count returns the number of stored records (duplicated ternary
// records count once per copy, as they each occupy a slot).
func (s *Slice) Count() int { return s.count }

// LoadFactor returns α = N / (M*S).
func (s *Slice) LoadFactor() float64 {
	return float64(s.count) / float64(s.cfg.Capacity())
}

// Index computes the home bucket for a key via the configured index
// generator, reduced modulo the row count when TotalRows is in use.
func (s *Slice) Index(key bitutil.Vec128) uint32 {
	idx := s.cfg.Index.Index(key)
	if rows := uint32(s.cfg.Rows()); idx >= rows {
		idx %= rows
	}
	return idx
}

// Insert stores a record in the bucket chosen by the index generator,
// spilling to subsequent buckets by linear probing when the home bucket
// is full (§2.1). The home row's auxiliary field is raised to cover the
// record's displacement so later searches know how far to reach.
func (s *Slice) Insert(rec match.Record) error {
	return s.InsertAt(s.Index(rec.Key.Value), rec)
}

// InsertAt stores a record with an explicit home bucket. Applications
// use this to duplicate ternary records whose don't-care bits overlap
// the hash bits (§4): each copy is a separate InsertAt.
func (s *Slice) InsertAt(home uint32, rec match.Record) error {
	_, err := s.Place(home, rec)
	return err
}

// Place is InsertAt reporting the record's displacement from its home
// bucket — the per-record quantity behind the AMAL analyses of §4
// (a record displaced by d costs 1+d accesses to look up).
func (s *Slice) Place(home uint32, rec match.Record) (displacement int, err error) {
	if int(home) >= s.cfg.Rows() {
		return 0, fmt.Errorf("caram: home bucket %d out of range", home)
	}
	if home != s.Index(rec.Key.Value) {
		s.foreign = true
	}
	if !s.cfg.AllowDuplicates {
		if _, _, _, found := s.locate(home, rec.Key); found {
			return 0, ErrExists
		}
	}
	rows := s.cfg.Rows()
	limit := s.cfg.probeLimit()
	// A displacement the aux field cannot record would make the record
	// unreachable, so the reach counter's capacity bounds probing too.
	if maxAux := int(uint64(1)<<uint(s.layout.AuxBits) - 1); limit > maxAux {
		limit = maxAux
	}
	s.homeLoad[home]++
	for d := 0; d <= limit && d < rows; d++ {
		idx := uint32((int(home) + d) % rows)
		row, ok := s.fetchChecked(idx, nil)
		if !ok {
			continue // quarantined or unreadable: never place records there
		}
		s.stats.insertProbes.Add(1)
		slot := s.freeSlot(row)
		if slot < 0 {
			continue
		}
		if err := s.updateRow(idx, true, func(wrow []uint64) error {
			return s.layout.WriteSlot(wrow, slot, rec)
		}); err != nil {
			return 0, err
		}
		s.count++
		s.stats.inserts.Add(1)
		if d > 0 {
			s.spilled++
			s.overflow[home] = true
			s.raiseReach(home, uint64(d))
		}
		return d, nil
	}
	s.homeLoad[home]--
	return 0, ErrFull
}

// updateRow is the slice's one write path to a stored row: the array
// copies the live row into writer-owned scratch, fn mutates the
// scratch, and the commit publishes every word atomically inside the
// row's seqlock window — with the ECC shadow mirror and check word
// refreshed inside the same window, so a lock-free Reader that
// validates its snapshot's version always holds a fully published row
// whose check word it can trust. charge selects whether the write is
// priced as a row access (inserts/deletes) or is unpriced maintenance
// (reach metadata). The caller holds the slice's port lock; callers
// never write to quarantined rows (their mutations divert to the
// shadow), so publishing here cannot bless corruption.
func (s *Slice) updateRow(idx uint32, charge bool, fn func(row []uint64) error) error {
	var row []uint64
	if charge {
		row = s.array.BeginRowUpdate(idx)
	} else {
		row = s.array.BeginRowMaint(idx)
	}
	err := fn(row)
	if s.ecc != nil {
		copy(s.ecc.shadowRow(idx), row)
		atomic.StoreUint64(&s.ecc.check[idx], checkWord(row))
	}
	s.array.CommitRowUpdate(idx)
	return err
}

// freeSlot returns the first invalid slot in the row, or -1.
func (s *Slice) freeSlot(row []uint64) int {
	for i := 0; i < s.layout.Slots(); i++ {
		if !s.layout.SlotValid(row, i) {
			return i
		}
	}
	return -1
}

// raiseReach lifts the home bucket's auxiliary reach counter to at
// least d, saturating at the field's capacity.
func (s *Slice) raiseReach(home uint32, d uint64) {
	max := uint64(1)<<uint(s.layout.AuxBits) - 1
	if d > max {
		d = max
	}
	if s.ecc != nil && s.ecc.quar[home].Load() {
		// The home row is out of service: the reach update lands in
		// the authoritative shadow and reaches the array at scrub.
		sh := s.ecc.shadowRow(home)
		if s.layout.ReadAux(sh) < d {
			s.layout.WriteAux(sh, d)
		}
		return
	}
	row := s.array.PeekRow(home) // metadata maintenance, not a charged access
	if s.layout.ReadAux(row) < d {
		s.updateRow(home, false, func(wrow []uint64) error {
			s.layout.WriteAux(wrow, d)
			return nil
		})
	}
}

// Reach returns the overflow reach recorded for a bucket (from the
// shadow when the bucket is quarantined — the stored aux bits are not
// trustworthy then).
func (s *Slice) Reach(bucket uint32) int {
	if s.ecc != nil && s.ecc.quar[bucket].Load() {
		return int(s.layout.ReadAux(s.ecc.shadowRow(bucket)))
	}
	return int(s.layout.ReadAux(s.array.PeekRow(bucket)))
}

// LookupResult reports the outcome of a search.
type LookupResult struct {
	Found      bool
	Record     match.Record
	RowsRead   int  // buckets examined — the per-lookup AMAL contribution
	Multi      bool // more than one slot matched in the winning bucket
	Erred      bool // a probed row was unavailable (quarantined/unreadable)
	HomeBucket uint32
}

// Lookup searches for a key: one access to the home bucket, then — only
// if the bucket had overflowed — subsequent buckets up to the recorded
// reach. The search key may carry don't-care bits (search-key masking);
// stored ternary masks are honored per Figure 4(b). The first match in
// probe order wins, so insertion order defines priority.
func (s *Slice) Lookup(search bitutil.Ternary) LookupResult {
	return s.LookupTraced(search, nil)
}

// LookupTraced is Lookup recording the probe chain into a
// request-scoped trace: one event per bucket probed (bucket index,
// displacement, slots tested, match count, overflow hop), an aggregate
// match-kernel event, and the lookup summary (home bucket, recorded
// reach, rows accessed). A nil trace makes every recording call a
// no-op, so this IS the hot path — Lookup delegates here and the
// alloc-regression CI holds the nil-trace walk to zero allocations.
func (s *Slice) LookupTraced(search bitutil.Ternary, tr *trace.Trace) LookupResult {
	home := s.Index(search.Value)
	res := LookupResult{HomeBucket: home}
	rows := s.cfg.Rows()
	reach := 0
	slots, matches, passes := 0, 0, 0
	for d := 0; d <= reach && d < rows; d++ {
		idx := uint32((int(home) + d) % rows)
		row, ok := s.fetchChecked(idx, tr)
		if !ok {
			// Row unavailable (quarantined or unreadable): its slots
			// cannot be tested, so the result is at best a partial miss.
			// For the home row, recover the reach from the maintenance
			// view (the shadow when quarantined) so spilled records stay
			// findable while the home is out of service.
			res.Erred = true
			if d == 0 {
				reach = s.Reach(home)
			}
			continue
		}
		res.RowsRead++
		if d == 0 {
			reach = int(s.layout.ReadAux(row))
		}
		// m.Vector aliases the processor's scratch; only the by-value
		// fields are kept, so the next probe may reuse it freely.
		m := s.proc.Search(row, search)
		if tr.Enabled() {
			tr.Probe(idx, d, m.SlotsTested, m.Count, m.Matched())
			slots += m.SlotsTested
			matches += m.Count
			passes += m.Passes
		}
		if m.Matched() {
			res.Found = true
			res.Record = m.Record
			res.Multi = m.Multi()
			break
		}
	}
	if tr.Enabled() {
		tr.Match(slots, matches, passes)
		tr.Lookup(home, reach, res.RowsRead, res.Found)
	}
	s.recordLookup(res)
	return res
}

// LookupBest searches the full reach of the bucket chain and returns
// the matching record with the highest score (ties to the earliest
// match). This is the LPM-style search: a longer prefix may live
// anywhere within the reach, so early exit is not sound.
func (s *Slice) LookupBest(search bitutil.Ternary, score func(match.Record) int) LookupResult {
	return s.LookupBestTraced(search, score, nil)
}

// LookupBestTraced is LookupBest with the same trace contract as
// LookupTraced. It runs the match kernel once per probed row and scans
// the match vector for the best-scoring slot (the same walk
// Processor.Best performs), so the traced slot/match counts agree with
// the processor's stats counters.
func (s *Slice) LookupBestTraced(search bitutil.Ternary, score func(match.Record) int, tr *trace.Trace) LookupResult {
	home := s.Index(search.Value)
	res := LookupResult{HomeBucket: home}
	rows := s.cfg.Rows()
	reach := 0
	bestScore := 0
	slots, matches, passes := 0, 0, 0
	for d := 0; d <= reach && d < rows; d++ {
		idx := uint32((int(home) + d) % rows)
		row, ok := s.fetchChecked(idx, tr)
		if !ok {
			// Row unavailable (quarantined or unreadable): its slots
			// cannot be tested, so the result is at best a partial miss.
			// For the home row, recover the reach from the maintenance
			// view (the shadow when quarantined) so spilled records stay
			// findable while the home is out of service.
			res.Erred = true
			if d == 0 {
				reach = s.Reach(home)
			}
			continue
		}
		res.RowsRead++
		if d == 0 {
			reach = int(s.layout.ReadAux(row))
		}
		m := s.proc.Search(row, search)
		if tr.Enabled() {
			tr.Probe(idx, d, m.SlotsTested, m.Count, m.Count > 0)
			slots += m.SlotsTested
			matches += m.Count
			passes += m.Passes
		}
		if m.Count == 0 {
			continue
		}
		// Best-scoring matched slot, ties to the lowest slot index —
		// strict > keeps the earliest (row, slot) winner overall.
		for i := 0; i < s.layout.Slots(); i++ {
			if m.Vector[i/64]>>uint(i%64)&1 == 0 {
				continue
			}
			rec, _ := s.layout.ReadSlot(row, i)
			if sc := score(rec); !res.Found || sc > bestScore {
				res.Found, res.Record, bestScore = true, rec, sc
			}
		}
	}
	if tr.Enabled() {
		tr.Match(slots, matches, passes)
		tr.Lookup(home, reach, res.RowsRead, res.Found)
	}
	s.recordLookup(res)
	return res
}

// recordLookup accounts one finished lookup. Atomic adds: it is shared
// by the port-locked Lookup* methods and lock-free Readers.
func (s *Slice) recordLookup(res LookupResult) {
	s.stats.lookups.Add(1)
	s.stats.rowsAccessed.Add(uint64(res.RowsRead))
	if res.Found {
		s.stats.hits.Add(1)
	} else {
		s.stats.misses.Add(1)
	}
	if res.Erred {
		s.stats.erred.Add(1)
	}
}

// locate finds the bucket and slot holding a key (exact ternary
// equality, not match semantics), scanning the home bucket's reach.
// Quarantined rows are scanned through their shadow — the logical
// contents — so maintenance operations keep seeing the true database
// while the stored row is out of service.
func (s *Slice) locate(home uint32, key bitutil.Ternary) (bucket uint32, slot, rowsRead int, found bool) {
	rows := s.cfg.Rows()
	reach := s.Reach(home)
	for d := 0; d <= reach && d < rows; d++ {
		idx := uint32((int(home) + d) % rows)
		row := s.logicalRow(idx, s.array.PeekRow(idx))
		rowsRead++
		for i := 0; i < s.layout.Slots(); i++ {
			rec, ok := s.layout.ReadSlot(row, i)
			if ok && rec.Key.Equal(key) {
				return idx, i, rowsRead, true
			}
		}
	}
	return 0, 0, rowsRead, false
}

// Delete removes the record with exactly this key (value and mask).
// The home bucket's reach is left as-is — conservative but correct, as
// the paper's insert/delete maintenance via auxiliary bits implies.
func (s *Slice) Delete(key bitutil.Ternary) error {
	return s.DeleteAt(s.Index(key.Value), key)
}

// DeleteAt removes a record given its explicit home bucket (the
// duplicated-ternary-record counterpart of InsertAt).
func (s *Slice) DeleteAt(home uint32, key bitutil.Ternary) error {
	if int(home) >= s.cfg.Rows() {
		return fmt.Errorf("caram: home bucket %d out of range", home)
	}
	bucket, slot, _, found := s.locate(home, key)
	if !found {
		return ErrNotFound
	}
	if s.ecc != nil && s.ecc.quar[bucket].Load() {
		// The row is out of service: delete from the authoritative
		// shadow, so the scrub restores the row without this record.
		s.layout.ClearSlot(s.ecc.shadowRow(bucket), slot)
	} else {
		s.updateRow(bucket, true, func(row []uint64) error {
			s.layout.ClearSlot(row, slot)
			return nil
		})
	}
	s.count--
	s.stats.deletes.Add(1)
	if s.homeLoad[home] > 0 {
		s.homeLoad[home]--
	}
	return nil
}

// Update replaces the data of an existing record in place (one
// read-modify-write of its row).
func (s *Slice) Update(key bitutil.Ternary, data bitutil.Vec128) error {
	home := s.Index(key.Value)
	bucket, slot, _, found := s.locate(home, key)
	if !found {
		return ErrNotFound
	}
	if s.ecc != nil && s.ecc.quar[bucket].Load() {
		sh := s.ecc.shadowRow(bucket)
		rec, _ := s.layout.ReadSlot(sh, slot)
		rec.Data = data
		return s.layout.WriteSlot(sh, slot, rec)
	}
	return s.updateRow(bucket, true, func(row []uint64) error {
		rec, _ := s.layout.ReadSlot(row, slot)
		rec.Data = data
		return s.layout.WriteSlot(row, slot, rec)
	})
}

// Contains reports whether the exact key is stored, without touching
// the lookup statistics.
func (s *Slice) Contains(key bitutil.Ternary) bool {
	_, _, _, found := s.locate(s.Index(key.Value), key)
	return found
}

// Records calls fn for every stored record in bucket/slot order,
// stopping early if fn returns false. It reads via PeekRow and charges
// no accesses (a diagnostic, not a hardware operation).
func (s *Slice) Records(fn func(bucket uint32, slot int, rec match.Record) bool) {
	for b := 0; b < s.cfg.Rows(); b++ {
		row := s.logicalRow(uint32(b), s.array.PeekRow(uint32(b)))
		for i := 0; i < s.layout.Slots(); i++ {
			if rec, ok := s.layout.ReadSlot(row, i); ok {
				if !fn(uint32(b), i, rec) {
					return
				}
			}
		}
	}
}

// Clear empties the slice and resets placement bookkeeping (statistics
// are kept; use ResetStats separately).
func (s *Slice) Clear() {
	s.array.Clear()
	s.resetECC()
	s.count = 0
	s.spilled = 0
	for i := range s.homeLoad {
		s.homeLoad[i] = 0
		s.overflow[i] = false
	}
}
