package caram

import (
	"testing"
	"testing/quick"

	"caram/internal/bitutil"
	"caram/internal/hash"
	"caram/internal/match"
)

func filledSlice(t *testing.T, n int) *Slice {
	t.Helper()
	s := MustNew(Config{
		IndexBits: 6,
		RowBits:   8*(1+32+16) + 8,
		KeyBits:   32,
		DataBits:  16,
		Index:     hash.NewMultShift(6),
	})
	for i := 0; i < n; i++ {
		if err := s.Insert(rec(uint64(i), uint64(i%100))); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestCountAndSelectWhere(t *testing.T) {
	s := filledSlice(t, 300)
	// Mask everything: match all records.
	all := bitutil.NewTernary(bitutil.Vec128{}, bitutil.Mask(32))
	if got := s.CountWhere(all); got != 300 {
		t.Errorf("CountWhere(all) = %d", got)
	}
	// Exact key.
	one := bitutil.Exact(bitutil.FromUint64(42))
	if got := s.CountWhere(one); got != 1 {
		t.Errorf("CountWhere(42) = %d", got)
	}
	// Keys with low byte 0x10: 0x10, 0x110 (272 < 300).
	pattern := bitutil.NewTernary(bitutil.FromUint64(0x10), bitutil.Mask(32).AndNot(bitutil.FromUint64(0xff)))
	recs := s.SelectWhere(pattern)
	if len(recs) != 2 {
		t.Fatalf("SelectWhere = %d records", len(recs))
	}
	for _, r := range recs {
		if r.Key.Value.Uint64()&0xff != 0x10 {
			t.Errorf("selected key %v", r.Key.Value)
		}
	}
	if got := s.SelectWhere(bitutil.Exact(bitutil.FromUint64(9999))); got != nil {
		t.Errorf("SelectWhere miss = %v", got)
	}
}

func TestUpdateWhere(t *testing.T) {
	s := filledSlice(t, 200)
	// Bulk "activation decay": halve the data of every record whose
	// low nibble is 5.
	pattern := bitutil.NewTernary(bitutil.FromUint64(5), bitutil.Mask(32).AndNot(bitutil.FromUint64(0xf)))
	want := s.CountWhere(pattern)
	updated := s.UpdateWhere(pattern, func(r match.Record) bitutil.Vec128 {
		return bitutil.FromUint64(r.Data.Uint64() / 2)
	})
	if updated != want {
		t.Fatalf("updated %d, matched %d", updated, want)
	}
	// Spot-check: key 21 had data 21, now 10; key 20 untouched.
	if got := s.Lookup(bitutil.Exact(bitutil.FromUint64(21))).Record.Data.Uint64(); got != 10 {
		t.Errorf("key 21 data = %d", got)
	}
	if got := s.Lookup(bitutil.Exact(bitutil.FromUint64(20))).Record.Data.Uint64(); got != 20 {
		t.Errorf("key 20 data = %d", got)
	}
	if s.Count() != 200 {
		t.Error("UpdateWhere changed the record count")
	}
}

func TestDeleteWhere(t *testing.T) {
	s := filledSlice(t, 300)
	// Delete every key with high nibble of low byte = 3 (0x30..0x3f,
	// 0x130..0x13f within range 0..299 -> 0x130..0x12b... just count).
	pattern := bitutil.NewTernary(bitutil.FromUint64(0x30), bitutil.Mask(32).AndNot(bitutil.FromUint64(0xf0)))
	want := s.CountWhere(pattern)
	if want == 0 {
		t.Fatal("pattern matches nothing; bad test setup")
	}
	deleted := s.DeleteWhere(pattern)
	if deleted != want {
		t.Fatalf("deleted %d, matched %d", deleted, want)
	}
	if s.Count() != 300-deleted {
		t.Errorf("Count = %d", s.Count())
	}
	if s.CountWhere(pattern) != 0 {
		t.Error("matches survive DeleteWhere")
	}
	// Untouched records remain findable and invariants hold.
	if !s.Lookup(bitutil.Exact(bitutil.FromUint64(0x11))).Found {
		t.Error("unrelated record lost")
	}
	if msg := s.Verify(); msg != "" {
		t.Errorf("Verify: %s", msg)
	}
	if s.DeleteWhere(bitutil.Exact(bitutil.FromUint64(123456))) != 0 {
		t.Error("DeleteWhere miss deleted something")
	}
}

func TestBuildFromRecords(t *testing.T) {
	s := MustNew(Config{
		IndexBits: 4,
		RowBits:   4*(1+8+8+8) + 8,
		KeyBits:   8,
		DataBits:  8,
		Ternary:   true,
		Index:     hash.NewBitSelect([]int{4, 5, 6, 7}),
	})
	short, _ := bitutil.ParseTernary("1100XXXX")
	long, _ := bitutil.ParseTernary("110000XX")
	recs := []match.Record{
		{Key: short, Data: bitutil.FromUint64(1)}, // inserted list-first...
		{Key: long, Data: bitutil.FromUint64(2)},
	}
	spec := func(r match.Record) int { return r.Key.Specificity(8) }
	if un := s.BuildFromRecords(recs, spec); un != 0 {
		t.Fatalf("unplaced = %d", un)
	}
	// ...but priority ordering puts the long prefix first in the
	// bucket, so the priority encoder (first match) returns it.
	res := s.Lookup(bitutil.Exact(bitutil.FromUint64(0b11000001)))
	if !res.Found || res.Record.Data.Uint64() != 2 {
		t.Errorf("priority build: lookup = %+v", res)
	}
	// Rebuild with nil score keeps list order.
	if un := s.BuildFromRecords(recs, nil); un != 0 {
		t.Fatalf("unplaced = %d", un)
	}
	res = s.Lookup(bitutil.Exact(bitutil.FromUint64(0b11000001)))
	if res.Record.Data.Uint64() != 1 {
		t.Errorf("list-order build: lookup = %+v", res)
	}
}

func TestBuildFromRecordsReportsUnplaced(t *testing.T) {
	s := MustNew(Config{
		IndexBits:       4,
		RowBits:         1*(1+32+16) + 8, // one slot per bucket
		KeyBits:         32,
		DataBits:        16,
		ProbeLimit:      NoProbing,
		Index:           hash.LowBits(4),
		AllowDuplicates: true,
	})
	var recs []match.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, rec(uint64(i)<<4|3, 0)) // all bucket 3
	}
	if un := s.BuildFromRecords(recs, nil); un != 4 {
		t.Errorf("unplaced = %d, want 4", un)
	}
}

func TestImageLoadImageRoundTrip(t *testing.T) {
	src := filledSlice(t, 250)
	img := src.Image()

	dst := MustNew(src.Config())
	if err := dst.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	if dst.Count() != src.Count() {
		t.Fatalf("count %d, want %d", dst.Count(), src.Count())
	}
	for i := 0; i < 250; i++ {
		res := dst.Lookup(bitutil.Exact(bitutil.FromUint64(uint64(i))))
		if !res.Found || res.Record.Data.Uint64() != uint64(i%100) {
			t.Fatalf("record %d lost in image transfer", i)
		}
	}
	// Placement bookkeeping survives the DMA-style transfer.
	if dst.Placement().SpilledRecords != src.Placement().SpilledRecords {
		t.Error("spill accounting not rebuilt")
	}
	if msg := dst.Verify(); msg != "" {
		t.Errorf("Verify: %s", msg)
	}
	if err := dst.LoadImage(img[:3]); err == nil {
		t.Error("short image accepted")
	}
}

// Property: CountWhere with an all-don't-care key always equals Count,
// and UpdateWhere with the identity function changes nothing.
func TestBulkOpsPropertiesQuick(t *testing.T) {
	all := bitutil.NewTernary(bitutil.Vec128{}, bitutil.Mask(32))
	f := func(keysRaw []uint16) bool {
		s := MustNew(Config{
			IndexBits: 5,
			RowBits:   6*(1+32+16) + 8,
			KeyBits:   32,
			DataBits:  16,
			Index:     hash.NewMultShift(5),
		})
		inserted := map[uint16]bool{}
		for _, k := range keysRaw {
			if inserted[k] {
				continue
			}
			if err := s.Insert(rec(uint64(k), uint64(k)%97)); err != nil {
				continue // chain full: fine, just skip
			}
			inserted[k] = true
		}
		if s.CountWhere(all) != s.Count() {
			return false
		}
		if n := s.UpdateWhere(all, func(r match.Record) bitutil.Vec128 { return r.Data }); n != s.Count() {
			return false
		}
		for k := range inserted {
			res := s.Lookup(bitutil.Exact(bitutil.FromUint64(uint64(k))))
			if !res.Found || res.Record.Data.Uint64() != uint64(k)%97 {
				return false
			}
		}
		// Deleting everything empties the slice.
		if s.DeleteWhere(all) != len(inserted) || s.Count() != 0 {
			return false
		}
		return s.CountWhere(all) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: image round trips preserve every record for random fills.
func TestImageRoundTripQuick(t *testing.T) {
	f := func(keysRaw []uint16) bool {
		src := MustNew(Config{
			IndexBits: 5,
			RowBits:   6*(1+32+16) + 8,
			KeyBits:   32,
			DataBits:  16,
			Index:     hash.NewMultShift(5),
		})
		for _, k := range keysRaw {
			_ = src.Insert(rec(uint64(k), uint64(k)>>3))
		}
		dst := MustNew(src.Config())
		if err := dst.LoadImage(src.Image()); err != nil {
			return false
		}
		if dst.Count() != src.Count() {
			return false
		}
		ok := true
		src.Records(func(_ uint32, _ int, r match.Record) bool {
			if !dst.Contains(r.Key) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
