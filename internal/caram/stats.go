package caram

import (
	"fmt"
	"sync/atomic"

	"caram/internal/match"
)

// Stats accumulates slice activity. AMAL — the average number of
// memory accesses per lookup, the paper's main performance metric — is
// derived from Lookups and RowsAccessed.
type Stats struct {
	Lookups      uint64
	RowsAccessed uint64
	Hits         uint64
	Misses       uint64
	Inserts      uint64
	InsertProbes uint64
	Deletes      uint64
	Erred        uint64 // lookups that skipped an unavailable row (ECC)
}

// AMAL returns the average number of memory accesses per lookup, or 0
// when no lookups have been recorded.
func (s Stats) AMAL() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.RowsAccessed) / float64(s.Lookups)
}

// HitRate returns the fraction of lookups that found a record.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// sliceStats is the internal atomic form of Stats: lock-free readers
// (caram.Reader) record their lookups concurrently with the
// port-locked write side, so every counter is an atomic cell. A
// snapshot is monotone, not instantaneous.
type sliceStats struct {
	lookups      atomic.Uint64
	rowsAccessed atomic.Uint64
	hits         atomic.Uint64
	misses       atomic.Uint64
	inserts      atomic.Uint64
	insertProbes atomic.Uint64
	deletes      atomic.Uint64
	erred        atomic.Uint64
}

// Stats returns a snapshot of the slice's activity counters.
func (s *Slice) Stats() Stats {
	return Stats{
		Lookups:      s.stats.lookups.Load(),
		RowsAccessed: s.stats.rowsAccessed.Load(),
		Hits:         s.stats.hits.Load(),
		Misses:       s.stats.misses.Load(),
		Inserts:      s.stats.inserts.Load(),
		InsertProbes: s.stats.insertProbes.Load(),
		Deletes:      s.stats.deletes.Load(),
		Erred:        s.stats.erred.Load(),
	}
}

// ResetStats zeroes activity counters on the slice, its array and its
// match processors (placement bookkeeping — load factor, spill counts —
// is preserved, since it describes the stored database, not activity).
func (s *Slice) ResetStats() {
	s.stats.lookups.Store(0)
	s.stats.rowsAccessed.Store(0)
	s.stats.hits.Store(0)
	s.stats.misses.Store(0)
	s.stats.inserts.Store(0)
	s.stats.insertProbes.Store(0)
	s.stats.deletes.Store(0)
	s.stats.erred.Store(0)
	s.array.ResetStats()
	s.proc.ResetStats()
}

// PlacementSummary describes how the stored database landed in the
// hash table — the quantities of Tables 2 and 3.
type PlacementSummary struct {
	Records            int     // records stored
	Capacity           int     // M*S
	LoadFactor         float64 // α
	OverflowingBuckets int     // home buckets that spilled at least one record
	OverflowingPct     float64 // as % of all buckets
	SpilledRecords     int     // records placed outside their home bucket
	SpilledPct         float64 // as % of all records
	MaxReach           int     // worst displacement recorded in any aux field
}

// Placement computes the placement summary for the current contents.
func (s *Slice) Placement() PlacementSummary {
	p := PlacementSummary{
		Records:        s.count,
		Capacity:       s.cfg.Capacity(),
		LoadFactor:     s.LoadFactor(),
		SpilledRecords: s.spilled,
	}
	for b, ov := range s.overflow {
		if ov {
			p.OverflowingBuckets++
		}
		if r := s.Reach(uint32(b)); r > p.MaxReach {
			p.MaxReach = r
		}
	}
	if rows := s.cfg.Rows(); rows > 0 {
		p.OverflowingPct = 100 * float64(p.OverflowingBuckets) / float64(rows)
	}
	if s.count > 0 {
		p.SpilledPct = 100 * float64(s.spilled) / float64(s.count)
	}
	return p
}

// ExpectedRows returns the §3.4 analytic expectation of rows accessed
// by a lookup of a uniformly random stored record under the current
// placement: mean over records of (1 + displacement), the model that
// charges a record displaced by d exactly 1+d accesses. It is the
// analytic counterpart — evaluated at the slice's current contents and
// load factor — of the measured per-request row count a trace records,
// so EXPLAIN can print model vs. measured side by side. An empty slice
// reports 1 (a lookup always reads the home bucket). The scan uses
// PeekRow and charges no accesses.
func (s *Slice) ExpectedRows() float64 {
	if s.count == 0 {
		return 1
	}
	rows := s.cfg.Rows()
	total := 0
	s.Records(func(bucket uint32, slot int, rec match.Record) bool {
		home := s.Index(rec.Key.Value)
		total += 1 + (int(bucket)-int(home)+rows)%rows
		return true
	})
	return float64(total) / float64(s.count)
}

// HomeLoads returns, for each bucket, the number of records that hash
// to it (before any spilling) — the distribution Figure 7 plots. The
// returned slice is a copy.
func (s *Slice) HomeLoads() []int32 {
	out := make([]int32, len(s.homeLoad))
	copy(out, s.homeLoad)
	return out
}

// Verify checks the slice's internal invariants and returns a
// description of the first violation, or "" if all hold:
//
//  1. Count equals the number of valid slots.
//  2. homeLoad sums to Count.
//  3. Every record whose key hashes to a home bucket (the Insert path)
//     sits within that bucket's recorded reach, so Lookup can find it.
//
// Records placed via InsertAt with a foreign home bucket (duplicated
// ternary records) are exempt from check 3; their reachability is the
// application's contract.
func (s *Slice) Verify() string {
	valid := 0
	violation := ""
	rows := s.cfg.Rows()
	s.Records(func(bucket uint32, slot int, rec match.Record) bool {
		valid++
		if s.foreign {
			return true // placement homes unknown; skip reachability
		}
		home := s.Index(rec.Key.Value)
		d := (int(bucket) - int(home) + rows) % rows
		if d > s.Reach(home) {
			violation = fmt.Sprintf("record at bucket %d slot %d: displacement %d exceeds home %d reach %d",
				bucket, slot, d, home, s.Reach(home))
			return false
		}
		return true
	})
	if violation != "" {
		return violation
	}
	if valid != s.count {
		return fmt.Sprintf("count %d but %d valid slots", s.count, valid)
	}
	sum := int32(0)
	for _, l := range s.homeLoad {
		sum += l
	}
	if int(sum) != s.count {
		return fmt.Sprintf("homeLoad sums to %d, count is %d", sum, s.count)
	}
	return ""
}
