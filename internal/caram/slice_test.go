package caram

import (
	"errors"
	"math/rand"
	"testing"

	"caram/internal/bitutil"
	"caram/internal/hash"
	"caram/internal/match"
	"caram/internal/mem"
)

// smallConfig returns a 16-bucket slice of 32-bit keys with 16-bit data
// and 4 slots per bucket.
func smallConfig() Config {
	return Config{
		IndexBits: 4,
		RowBits:   4*(1+32+16) + 8, // 4 slots + aux
		KeyBits:   32,
		DataBits:  16,
		Index:     hash.LowBits(4),
	}
}

func rec(key, data uint64) match.Record {
	return match.Record{Key: bitutil.Exact(bitutil.FromUint64(key)), Data: bitutil.FromUint64(data)}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := map[string]func(*Config){
		"no index":        func(c *Config) { c.Index = nil },
		"index mismatch":  func(c *Config) { c.Index = hash.LowBits(5) },
		"bad IndexBits":   func(c *Config) { c.IndexBits = 0; c.Index = hash.LowBits(0) },
		"huge IndexBits":  func(c *Config) { c.IndexBits = 31 },
		"negative probes": func(c *Config) { c.ProbeLimit = -2 },
		"bad layout":      func(c *Config) { c.KeyBits = 0 },
	}
	for name, mutate := range cases {
		c := smallConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestConfigGeometry(t *testing.T) {
	c := smallConfig()
	if c.Rows() != 16 {
		t.Errorf("Rows = %d", c.Rows())
	}
	if c.Slots() != 4 {
		t.Errorf("Slots = %d", c.Slots())
	}
	if c.Capacity() != 64 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
}

func TestInsertLookup(t *testing.T) {
	s := MustNew(smallConfig())
	if err := s.Insert(rec(0x12345678, 42)); err != nil {
		t.Fatal(err)
	}
	res := s.Lookup(bitutil.Exact(bitutil.FromUint64(0x12345678)))
	if !res.Found || res.Record.Data.Uint64() != 42 {
		t.Fatalf("lookup = %+v", res)
	}
	if res.RowsRead != 1 {
		t.Errorf("RowsRead = %d, want 1 (single memory access)", res.RowsRead)
	}
	miss := s.Lookup(bitutil.Exact(bitutil.FromUint64(0x9999)))
	if miss.Found {
		t.Error("phantom hit")
	}
	if s.Count() != 1 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestInsertDuplicateRejected(t *testing.T) {
	s := MustNew(smallConfig())
	if err := s.Insert(rec(7, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(rec(7, 2)); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate insert: %v", err)
	}
	cfg := smallConfig()
	cfg.AllowDuplicates = true
	d := MustNew(cfg)
	if err := d.Insert(rec(7, 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(rec(7, 2)); err != nil {
		t.Errorf("AllowDuplicates insert: %v", err)
	}
	if d.Count() != 2 {
		t.Errorf("Count = %d", d.Count())
	}
}

func TestLinearProbingAndReach(t *testing.T) {
	s := MustNew(smallConfig())
	// 6 keys all hashing to bucket 3 (low 4 bits = 3): 4 fit, 2 spill.
	for i := 0; i < 6; i++ {
		if err := s.Insert(rec(uint64(i)<<4|3, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Reach(3); got != 1 {
		t.Errorf("Reach(3) = %d, want 1", got)
	}
	// Every record must be findable; spilled ones cost 2 accesses.
	for i := 0; i < 6; i++ {
		res := s.Lookup(bitutil.Exact(bitutil.FromUint64(uint64(i)<<4 | 3)))
		if !res.Found || res.Record.Data.Uint64() != uint64(i) {
			t.Fatalf("key %d: %+v", i, res)
		}
		if i < 4 && res.RowsRead != 1 {
			t.Errorf("home-bucket key %d read %d rows", i, res.RowsRead)
		}
		if i >= 4 && res.RowsRead != 2 {
			t.Errorf("spilled key %d read %d rows", i, res.RowsRead)
		}
	}
	p := s.Placement()
	if p.SpilledRecords != 2 || p.OverflowingBuckets != 1 {
		t.Errorf("placement = %+v", p)
	}
	if p.MaxReach != 1 {
		t.Errorf("MaxReach = %d", p.MaxReach)
	}
	if msg := s.Verify(); msg != "" {
		t.Errorf("Verify: %s", msg)
	}
}

func TestProbeWrapsAroundRowEnd(t *testing.T) {
	cfg := smallConfig()
	s := MustNew(cfg)
	// Fill bucket 15 (the last) and spill into bucket 0.
	for i := 0; i < 5; i++ {
		if err := s.Insert(rec(uint64(i)<<4|15, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Lookup(bitutil.Exact(bitutil.FromUint64(4<<4 | 15)))
	if !res.Found {
		t.Fatal("wrapped record not found")
	}
	if msg := s.Verify(); msg != "" {
		t.Errorf("Verify: %s", msg)
	}
}

func TestProbeLimitErrFull(t *testing.T) {
	cfg := smallConfig()
	cfg.ProbeLimit = 1
	s := MustNew(cfg)
	// Capacity along the probe chain from bucket 3: 2 buckets * 4 slots.
	n := 0
	var err error
	for i := 0; i < 20; i++ {
		err = s.Insert(rec(uint64(i)<<4|3, 0))
		if err != nil {
			break
		}
		n++
	}
	if !errors.Is(err, ErrFull) {
		t.Fatalf("expected ErrFull, got %v after %d inserts", err, n)
	}
	if n != 8 {
		t.Errorf("placed %d records, want 8", n)
	}
	// The failed insert must not corrupt bookkeeping.
	if msg := s.Verify(); msg != "" {
		t.Errorf("Verify: %s", msg)
	}
}

func TestDelete(t *testing.T) {
	s := MustNew(smallConfig())
	for i := 0; i < 6; i++ {
		if err := s.Insert(rec(uint64(i)<<4|3, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	key := bitutil.Exact(bitutil.FromUint64(2<<4 | 3))
	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if s.Lookup(key).Found {
		t.Error("deleted record still found")
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d", s.Count())
	}
	if err := s.Delete(key); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	// Spilled record (displacement 1) deletable too.
	if err := s.Delete(bitutil.Exact(bitutil.FromUint64(5<<4 | 3))); err != nil {
		t.Fatal(err)
	}
	if msg := s.Verify(); msg != "" {
		t.Errorf("Verify: %s", msg)
	}
}

func TestUpdate(t *testing.T) {
	s := MustNew(smallConfig())
	if err := s.Insert(rec(9, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(bitutil.Exact(bitutil.FromUint64(9)), bitutil.FromUint64(77)); err != nil {
		t.Fatal(err)
	}
	if res := s.Lookup(bitutil.Exact(bitutil.FromUint64(9))); res.Record.Data.Uint64() != 77 {
		t.Errorf("updated data = %v", res.Record.Data)
	}
	if err := s.Update(bitutil.Exact(bitutil.FromUint64(1000)), bitutil.Vec128{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("update missing: %v", err)
	}
}

func TestTernaryLPMInSlice(t *testing.T) {
	cfg := Config{
		IndexBits: 2,
		RowBits:   4*(1+8+8+8) + 8,
		KeyBits:   8,
		DataBits:  8,
		Ternary:   true,
		Index:     hash.NewBitSelect([]int{6, 7}), // top two key bits
	}
	s := MustNew(cfg)
	short, _ := bitutil.ParseTernary("11XXXXXX")
	long, _ := bitutil.ParseTernary("1100XXXX")
	if err := s.Insert(match.Record{Key: long, Data: bitutil.FromUint64(2)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(match.Record{Key: short, Data: bitutil.FromUint64(1)}); err != nil {
		t.Fatal(err)
	}
	spec := func(r match.Record) int { return r.Key.Specificity(8) }
	res := s.LookupBest(bitutil.Exact(bitutil.FromUint64(0b11001010)), spec)
	if !res.Found || res.Record.Data.Uint64() != 2 {
		t.Errorf("LPM = %+v, want longest prefix", res)
	}
	res = s.LookupBest(bitutil.Exact(bitutil.FromUint64(0b11111010)), spec)
	if !res.Found || res.Record.Data.Uint64() != 1 {
		t.Errorf("short-prefix match = %+v", res)
	}
	if res := s.LookupBest(bitutil.Exact(bitutil.FromUint64(0b00111010)), spec); res.Found {
		t.Errorf("no-prefix match = %+v", res)
	}
}

func TestInsertAtForeignHomeAndContains(t *testing.T) {
	s := MustNew(smallConfig())
	r := rec(0x3, 5)
	if err := s.InsertAt(7, r); err != nil { // foreign home
		t.Fatal(err)
	}
	if !s.Contains(r.Key) {
		// Contains locates via Index(key)=3, reach 0 — record at 7 is
		// invisible there; that's the application's contract with
		// InsertAt. Just ensure no panic and deterministic result.
		t.Log("record at foreign home invisible to Contains, as documented")
	}
	if err := s.InsertAt(99, r); err == nil {
		t.Error("out-of-range home accepted")
	}
	if err := s.DeleteAt(99, r.Key); err == nil {
		t.Error("out-of-range DeleteAt accepted")
	}
	if err := s.DeleteAt(7, r.Key); err != nil {
		t.Errorf("DeleteAt: %v", err)
	}
}

func TestStatsAndAMAL(t *testing.T) {
	s := MustNew(smallConfig())
	for i := 0; i < 6; i++ {
		if err := s.Insert(rec(uint64(i)<<4|3, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		s.Lookup(bitutil.Exact(bitutil.FromUint64(uint64(i)<<4 | 3)))
	}
	st := s.Stats()
	if st.Lookups != 6 || st.Hits != 6 {
		t.Errorf("stats = %+v", st)
	}
	// 4 home hits (1 row) + 2 spilled (2 rows) = 8 rows / 6 lookups.
	if want := 8.0 / 6.0; st.AMAL() != want {
		t.Errorf("AMAL = %f, want %f", st.AMAL(), want)
	}
	if st.HitRate() != 1 {
		t.Errorf("HitRate = %f", st.HitRate())
	}
	s.ResetStats()
	if s.Stats().AMAL() != 0 || s.Stats().HitRate() != 0 {
		t.Error("reset stats not zero")
	}
	// Placement is preserved across ResetStats.
	if s.Placement().SpilledRecords != 2 {
		t.Error("ResetStats clobbered placement")
	}
}

func TestClear(t *testing.T) {
	s := MustNew(smallConfig())
	for i := 0; i < 6; i++ {
		if err := s.Insert(rec(uint64(i)<<4|3, 0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Clear()
	if s.Count() != 0 || s.LoadFactor() != 0 {
		t.Error("Clear left records")
	}
	p := s.Placement()
	if p.SpilledRecords != 0 || p.OverflowingBuckets != 0 {
		t.Errorf("Clear left placement: %+v", p)
	}
	if s.Lookup(bitutil.Exact(bitutil.FromUint64(3))).Found {
		t.Error("record survived Clear")
	}
}

func TestRecordsIteration(t *testing.T) {
	s := MustNew(smallConfig())
	for i := 0; i < 5; i++ {
		if err := s.Insert(rec(uint64(i)<<4|uint64(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	s.Records(func(b uint32, slot int, r match.Record) bool {
		seen++
		return true
	})
	if seen != 5 {
		t.Errorf("iterated %d records", seen)
	}
	// Early stop.
	seen = 0
	s.Records(func(b uint32, slot int, r match.Record) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Errorf("early stop iterated %d", seen)
	}
}

func TestDRAMTimingPropagates(t *testing.T) {
	cfg := smallConfig()
	cfg.Tech = mem.DRAM
	s := MustNew(cfg)
	if err := s.Insert(rec(1, 1)); err != nil {
		t.Fatal(err)
	}
	s.Lookup(bitutil.Exact(bitutil.FromUint64(1)))
	if got := s.Array().Config().Timing.MinInterval; got != 6 {
		t.Errorf("DRAM MinInterval = %d", got)
	}
	if s.Array().Stats().Cycles == 0 {
		t.Error("no cycles charged")
	}
}

// Property-style randomized test: a few hundred random inserts,
// lookups, and deletes against a map-based oracle.
func TestSliceAgainstOracle(t *testing.T) {
	cfg := Config{
		IndexBits: 5,
		RowBits:   3*(1+24+16) + 8,
		KeyBits:   24,
		DataBits:  16,
		Index:     hash.NewMultShift(5),
	}
	s := MustNew(cfg)
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(11))
	for op := 0; op < 2000; op++ {
		k := uint64(rng.Intn(300))
		key := bitutil.Exact(bitutil.FromUint64(k).Trunc(24))
		switch rng.Intn(3) {
		case 0: // insert
			v := rng.Uint64() & 0xffff
			err := s.Insert(match.Record{Key: key, Data: bitutil.FromUint64(v)})
			_, exists := oracle[k]
			switch {
			case exists && !errors.Is(err, ErrExists):
				t.Fatalf("op %d: duplicate insert err = %v", op, err)
			case !exists && err == nil:
				oracle[k] = v
			case !exists && errors.Is(err, ErrFull):
				// acceptable: chain full
			case !exists && err != nil:
				t.Fatalf("op %d: insert err = %v", op, err)
			}
		case 1: // lookup
			res := s.Lookup(key)
			v, exists := oracle[k]
			if res.Found != exists {
				t.Fatalf("op %d: key %d found=%v oracle=%v", op, k, res.Found, exists)
			}
			if exists && res.Record.Data.Uint64() != v {
				t.Fatalf("op %d: key %d data=%d want %d", op, k, res.Record.Data.Uint64(), v)
			}
		case 2: // delete
			err := s.Delete(key)
			_, exists := oracle[k]
			if exists && err != nil {
				t.Fatalf("op %d: delete existing err = %v", op, err)
			}
			if !exists && !errors.Is(err, ErrNotFound) {
				t.Fatalf("op %d: delete missing err = %v", op, err)
			}
			delete(oracle, k)
		}
	}
	if s.Count() != len(oracle) {
		t.Fatalf("count %d, oracle %d", s.Count(), len(oracle))
	}
	if msg := s.Verify(); msg != "" {
		t.Fatalf("Verify: %s", msg)
	}
}

func TestNoProbing(t *testing.T) {
	cfg := smallConfig()
	cfg.ProbeLimit = NoProbing
	s := MustNew(cfg)
	// 4 slots per bucket: the 5th conflicting key must be rejected, not
	// spilled.
	for i := 0; i < 4; i++ {
		if err := s.Insert(rec(uint64(i)<<4|3, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Insert(rec(4<<4|3, 0)); !errors.Is(err, ErrFull) {
		t.Fatalf("expected ErrFull, got %v", err)
	}
	if s.Placement().SpilledRecords != 0 {
		t.Error("NoProbing spilled a record")
	}
	// Every stored record costs exactly one access.
	for i := 0; i < 4; i++ {
		if res := s.Lookup(bitutil.Exact(bitutil.FromUint64(uint64(i)<<4 | 3))); res.RowsRead != 1 {
			t.Errorf("RowsRead = %d", res.RowsRead)
		}
	}
}

func TestTotalRowsNonPowerOfTwo(t *testing.T) {
	cfg := Config{
		IndexBits: 10, // documentation only when TotalRows is set
		TotalRows: 160,
		RowBits:   4*(1+32+16) + 8,
		KeyBits:   32,
		DataBits:  16,
		Index:     hash.Func{F: func(k bitutil.Vec128) uint32 { return uint32(k.Lo * 2654435761) }, R: 31, Label: "mod"},
	}
	s := MustNew(cfg)
	if s.Config().Rows() != 160 {
		t.Fatalf("Rows = %d", s.Config().Rows())
	}
	for i := 0; i < 300; i++ {
		if err := s.Insert(rec(uint64(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		res := s.Lookup(bitutil.Exact(bitutil.FromUint64(uint64(i))))
		if !res.Found || res.Record.Data.Uint64() != uint64(i) {
			t.Fatalf("key %d lost", i)
		}
		if int(res.HomeBucket) >= 160 {
			t.Fatalf("home bucket %d out of range", res.HomeBucket)
		}
	}
	// Generator range below TotalRows must be rejected.
	bad := cfg
	bad.Index = hash.LowBits(7) // 128 < 160
	if err := bad.Validate(); err == nil {
		t.Error("undersized generator accepted")
	}
}
