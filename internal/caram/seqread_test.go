package caram

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"caram/internal/bitutil"
	"caram/internal/hash"
	"caram/internal/match"
)

// The lock-free Reader's proof obligations, exercised at the caram
// layer: agreement with the locked lookup, no torn observation under a
// concurrent writer (self-validating payloads, run under -race by
// `make seqlock-guard`), clean escalation on every condition the
// protocol cannot certify, and a zero-allocation steady state.

// seqSlice builds a slice wide enough to embed a generation+checksum
// payload: 32-bit keys, 32-bit data, 16 rows x 4 slots.
func seqSlice(ecc bool) *Slice {
	return MustNew(Config{
		IndexBits: 4,
		RowBits:   4*(1+32+32) + 8,
		KeyBits:   32,
		DataBits:  32,
		Index:     hash.NewMultShift(4),
		ECC:       ecc,
	})
}

func seqRec(key, data uint64) match.Record {
	return match.Record{Key: bitutil.Exact(bitutil.FromUint64(key)), Data: bitutil.FromUint64(data)}
}

func seqKey(k uint64) bitutil.Ternary { return bitutil.Exact(bitutil.FromUint64(k)) }

// payload encodes a self-validating value: the generation in the high
// half, a checksum binding key and generation in the low half. A torn
// row that mixes two publications cannot decode cleanly.
func payload(key uint64, gen uint32) uint64 {
	return uint64(gen)<<16 | uint64(payloadSum(key, gen))
}

func payloadSum(key uint64, gen uint32) uint16 {
	x := key*0x9E3779B97F4A7C15 ^ uint64(gen)*0xBF58476D1CE4E5B9
	return uint16(x >> 48)
}

// payloadValid decodes a returned payload and checks its checksum.
func payloadValid(key, data uint64) bool {
	gen := uint32(data >> 16)
	return uint16(data) == payloadSum(key, gen)
}

// TestReaderAgreesWithLockedLookup is the testing/quick property: for
// arbitrary inserted records, the lock-free Reader and the port-locked
// Lookup return identical answers.
func TestReaderAgreesWithLockedLookup(t *testing.T) {
	s := seqSlice(false)
	rd := s.NewReader()
	seen := make(map[uint32]bool)
	prop := func(key, data uint32) bool {
		if seen[key] {
			return true
		}
		seen[key] = true
		if err := s.Insert(seqRec(uint64(key), uint64(data))); err != nil {
			return true // table full: nothing to compare
		}
		lr, ok := rd.Lookup(seqKey(uint64(key)), nil)
		if !ok || !lr.Found || lr.Record.Data.Uint64() != uint64(data) {
			return false
		}
		locked := s.Lookup(seqKey(uint64(key)))
		return locked.Found &&
			locked.Record.Data.Uint64() == lr.Record.Data.Uint64() &&
			locked.RowsRead == lr.RowsRead &&
			locked.HomeBucket == lr.HomeBucket
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	// Misses agree too.
	for k := uint64(1 << 40); k < 1<<40+32; k++ {
		lr, ok := rd.Lookup(seqKey(k), nil)
		if !ok {
			t.Fatalf("reader escalated on quiescent slice, key %x", k)
		}
		if lr.Found != s.Lookup(seqKey(k)).Found {
			t.Fatalf("reader/locked disagree on key %x", k)
		}
	}
}

// TestReaderTornReadStress is the torn-read/linearizability suite: 32
// reader goroutines hammer lock-free lookups while one writer rewrites
// rows with self-validating payloads. Every returned value must be a
// legally published state — the checksum proves no reader ever
// observed a half-written row — and permanent keys (inserted once,
// never touched again) must hit on every single read.
func TestReaderTornReadStress(t *testing.T) {
	const (
		nReaders   = 32
		nPermanent = 12
		nChurn     = 8
		writerIter = 1000
		minReads   = 10_000
	)
	s := seqSlice(false)
	permKeys := make([]uint64, nPermanent)
	for i := range permKeys {
		permKeys[i] = uint64(0xA000 + i)
		if err := s.Insert(seqRec(permKeys[i], payload(permKeys[i], 0))); err != nil {
			t.Fatalf("permanent insert %d: %v", i, err)
		}
	}
	churnKeys := make([]uint64, nChurn)
	for i := range churnKeys {
		churnKeys[i] = uint64(0xB000 + i)
		if err := s.Insert(seqRec(churnKeys[i], payload(churnKeys[i], 0))); err != nil {
			t.Fatalf("churn insert %d: %v", i, err)
		}
	}

	var done atomic.Bool
	var torn, escalated, reads atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < nReaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rd := s.NewReader()
			for i := 0; !done.Load(); i++ {
				var key uint64
				permanent := i%2 == 0
				if permanent {
					key = permKeys[(g+i)%nPermanent]
				} else {
					key = churnKeys[(g+i)%nChurn]
				}
				lr, ok := rd.Lookup(seqKey(key), nil)
				if !ok {
					escalated.Add(1)
					continue // a locked caller would retry; the property needs certified reads only
				}
				reads.Add(1)
				if permanent && !lr.Found {
					t.Errorf("permanent key %x missing (linearizability violation)", key)
					return
				}
				if lr.Found && !payloadValid(key, lr.Record.Data.Uint64()) {
					torn.Add(1)
					t.Errorf("key %x returned unpublished value %#x (torn read)", key, lr.Record.Data.Uint64())
					return
				}
				// Yield between lookups so the single writer is never
				// starved for a full preemption quantum per reader on a
				// one-CPU box; the point is interleaving, not spin.
				runtime.Gosched()
			}
		}(g)
	}

	// The one writer: churn keys cycle delete/insert through rising
	// generations, so rows republish constantly under the readers. The
	// yield each iteration interleaves readers and writer even on one
	// CPU, and the churn keeps going until the readers have certified
	// real work (bounded by a generation cap so a broken reader side
	// cannot hang the test).
	deadline := time.Now().Add(10 * time.Second)
	for gen := uint32(1); gen <= writerIter || (reads.Load() < minReads && time.Now().Before(deadline)); gen++ {
		k := churnKeys[int(gen)%nChurn]
		if err := s.Delete(seqKey(k)); err != nil {
			t.Fatalf("delete gen %d: %v", gen, err)
		}
		if err := s.Insert(seqRec(k, payload(k, gen))); err != nil {
			t.Fatalf("reinsert gen %d: %v", gen, err)
		}
		runtime.Gosched()
	}
	done.Store(true)
	wg.Wait()
	if torn.Load() != 0 {
		t.Fatalf("%d torn reads observed", torn.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("no certified reads completed; harness exercised nothing")
	}
	t.Logf("certified reads=%d escalations=%d", reads.Load(), escalated.Load())
}

// TestReaderEscalatesOnOpenWindow pins the retry-exhaustion path: with
// a write window held open the Reader retries exactly
// maxSnapshotRetries times, reports them via TakeRetries, and refuses
// to certify; once the window commits it certifies again.
func TestReaderEscalatesOnOpenWindow(t *testing.T) {
	s := seqSlice(false)
	key := uint64(0x77)
	if err := s.Insert(seqRec(key, payload(key, 0))); err != nil {
		t.Fatal(err)
	}
	rd := s.NewReader()
	home := s.Index(bitutil.FromUint64(key))
	s.Array().BeginRowMaint(home)
	if _, ok := rd.Lookup(seqKey(key), nil); ok {
		t.Fatal("reader certified a lookup through an open write window")
	}
	if n := rd.TakeRetries(); n != maxSnapshotRetries {
		t.Fatalf("retries = %d, want %d", n, maxSnapshotRetries)
	}
	if _, ok := rd.Contains(seqKey(key)); ok {
		t.Fatal("Contains certified through an open write window")
	}
	s.Array().CommitRowUpdate(home)
	lr, ok := rd.Lookup(seqKey(key), nil)
	if !ok || !lr.Found {
		t.Fatalf("post-commit lookup = %+v, ok=%v", lr, ok)
	}
	if n := rd.TakeRetries(); n != maxSnapshotRetries {
		t.Fatalf("Contains retries not folded in: %d", n)
	}
}

// TestReaderEscalatesOnEccAnomaly pins the never-silently-wrong
// contract: a Reader refuses rows whose check word disagrees (single-
// bit corruption) and rows under quarantine, leaving every ECC
// decision to the locked path — which then corrects or quarantines
// exactly as without the lock-free layer.
func TestReaderEscalatesOnEccAnomaly(t *testing.T) {
	s := seqSlice(true)
	key := uint64(0x42)
	if err := s.Insert(seqRec(key, payload(key, 0))); err != nil {
		t.Fatal(err)
	}
	home := s.Index(bitutil.FromUint64(key))
	rd := s.NewReader()
	if lr, ok := rd.Lookup(seqKey(key), nil); !ok || !lr.Found {
		t.Fatalf("clean lookup = %+v, ok=%v", lr, ok)
	}

	// Single-bit corruption, published whole: the snapshot is version-
	// consistent but fails the check word, so the Reader escalates and
	// the locked path corrects in place.
	row := append([]uint64(nil), s.Array().PeekRow(home)...)
	row[0] ^= 1 << 7
	s.Array().PublishRow(home, row)
	if _, ok := rd.Lookup(seqKey(key), nil); ok {
		t.Fatal("reader certified a corrupted row")
	}
	if lr := s.Lookup(seqKey(key)); !lr.Found {
		t.Fatalf("locked lookup after corruption = %+v", lr)
	}
	if got := s.EccStats().CorrectedBits; got != 1 {
		t.Fatalf("CorrectedBits = %d, want 1", got)
	}
	if lr, ok := rd.Lookup(seqKey(key), nil); !ok || !lr.Found {
		t.Fatalf("post-correction reader lookup = %+v, ok=%v", lr, ok)
	}

	// Double-bit corruption: the locked path quarantines; the Reader
	// sees the quarantine flag and escalates without certifying.
	row = append(row[:0], s.Array().PeekRow(home)...)
	row[0] ^= 1<<3 | 1<<19
	s.Array().PublishRow(home, row)
	if _, ok := rd.Lookup(seqKey(key), nil); ok {
		t.Fatal("reader certified a doubly-corrupted row")
	}
	if lr := s.Lookup(seqKey(key)); !lr.Erred {
		t.Fatalf("locked lookup should report Erred, got %+v", lr)
	}
	if !s.Quarantined(home) {
		t.Fatal("row not quarantined after double corruption")
	}
	if _, ok := rd.Lookup(seqKey(key), nil); ok {
		t.Fatal("reader certified a quarantined row")
	}
	s.Scrub()
	if lr, ok := rd.Lookup(seqKey(key), nil); !ok || !lr.Found {
		t.Fatalf("post-scrub reader lookup = %+v, ok=%v", lr, ok)
	}
}

// TestReaderZeroAlloc holds the lock-free lookup to zero allocations
// per operation once its scratch is warm — the Reader joins the PR 3
// alloc-regression contract (run by `make seqlock-guard`).
func TestReaderZeroAlloc(t *testing.T) {
	s := seqSlice(false)
	for i := 0; i < 8; i++ {
		k := uint64(0x500 + i)
		if err := s.Insert(seqRec(k, payload(k, 0))); err != nil {
			t.Fatal(err)
		}
	}
	rd := s.NewReader()
	rd.Lookup(seqKey(0x500), nil) // warm the match-vector scratch
	if n := testing.AllocsPerRun(200, func() {
		if lr, ok := rd.Lookup(seqKey(0x503), nil); !ok || !lr.Found {
			t.Fatal("lookup failed")
		}
		if lr, ok := rd.Lookup(seqKey(0xF00D), nil); !ok || lr.Found {
			t.Fatal("phantom hit")
		}
		if _, ok := rd.Contains(seqKey(0x500)); !ok {
			t.Fatal("contains failed")
		}
	}); n != 0 {
		t.Fatalf("lock-free lookup allocated %.1f times per run, want 0", n)
	}
}
