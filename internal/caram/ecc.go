package caram

import (
	"math/bits"
	"sync/atomic"

	"caram/internal/trace"
)

// Per-row error coding. The check word is a SECDED-style pair stored
// beside (not inside) the array, one word per row:
//
//   - bits 0..31: a Hamming-style syndrome — the XOR, over every set
//     bit of the row, of that bit's position code (word*64 + bit + 1;
//     the +1 keeps every code nonzero so a single flip always yields a
//     nonzero syndrome delta);
//   - bit 32: the row's overall parity.
//
// On a checked fetch the row's check word is recomputed and compared.
// A single-bit error changes the parity and leaves the syndrome delta
// equal to the flipped bit's position code, so it is corrected in
// place — written back to storage, the scrub-on-read discipline real
// memory controllers use. A double-bit error preserves parity but
// yields a nonzero syndrome delta: detectable, not correctable, so the
// row is quarantined — lookups skip it and report a distinct
// miss-with-error until a scrub pass restores it.
//
// The shadow is the insert-side logical image: every legitimate write
// (insert, delete, update, reach maintenance, bulk transform) is
// mirrored into it, so a scrub can restore a quarantined row's true
// contents without re-deriving them from the fault history. The shadow
// models the paper's §3.2 observation that the hashed database also
// exists at the host — reconstruction is a memory copy, not a rebuild.
//
// Protection is opt-in (Config.ECC or EnableECC): with it off the
// slice keeps its existing zero-allocation lookup path untouched
// except for the one nil check fetchChecked adds.

// eccState is a slice's error-coding sidecar. check and quar are the
// two cells lock-free Readers consult (atomically; every store to them
// happens on the serialized write side, check words inside their row's
// seqlock window); everything else — shadow, quarBits, the counters —
// is port-locked state the lock-free path never touches. A Reader that
// sees a quarantined flag, or a snapshot whose recomputed check word
// disagrees with the stored one, escalates to the locked path, which
// performs the full detect/correct/quarantine protocol and its
// accounting. That keeps PR 5's never-silently-wrong contract intact:
// no corrupted row is ever *returned* by the lock-free path, and every
// ECC decision is still made exactly once, under the lock.
type eccState struct {
	rowWords int
	check    []uint64      // one check word per row (atomic: readers verify against it)
	shadow   []uint64      // authoritative logical image, rowWords per row
	quar     []atomic.Bool // rows out of service
	quarBits []uint32      // corrupt-bit count recorded at quarantine time
	nQuar    int
	scratch  []uint64 // correction buffer: fixes never mutate storage in place
	st       EccStats
}

// EccStats counts the error-coding layer's activity. The chaos harness
// reconciles these exactly against the injector's ledger:
// CorrectedBits accounts every single-bit event (random singles plus
// stuck-cell assertions), Uncorrectable every double-bit event, and
// ScrubRepairedBits the corrupt bits a scrub restored (two per
// quarantined row in the one-event-per-fetch model).
type EccStats struct {
	CheckedFetches    uint64 // fetches verified against the check word
	CorrectedBits     uint64 // single-bit errors fixed in place
	Uncorrectable     uint64 // quarantine events (double-bit detections)
	ReadErrors        uint64 // transient row-read failures observed
	QuarantineSkips   uint64 // probes that skipped an out-of-service row
	ScrubRuns         uint64
	ScrubRepairedRows uint64 // rows a scrub restored from the shadow
	ScrubRepairedBits uint64 // corrupt bits restored (recorded at quarantine)
	ScrubReleased     uint64 // quarantined rows returned to service
}

// checkWord computes the row's syndrome|parity pair.
func checkWord(row []uint64) uint64 {
	var syn uint32
	pop := 0
	for w, v := range row {
		pop += bits.OnesCount64(v)
		for v != 0 {
			b := bits.TrailingZeros64(v)
			syn ^= uint32(w<<6 + b + 1)
			v &= v - 1
		}
	}
	return uint64(syn) | uint64(pop&1)<<32
}

// EnableECC turns per-row error coding on, building the check words
// and the insert-side shadow from the array's current contents. It is
// the post-load entry point too: LoadImage and ReadImage call it again
// on an ECC-enabled slice, so bulk-constructed databases (§3.2) are
// protected from their current state onward. Enabling is idempotent;
// re-enabling rebuilds and clears any quarantine.
func (s *Slice) EnableECC() {
	rows := s.cfg.Rows()
	rw := s.array.Words() / rows
	e := s.ecc
	if e == nil {
		e = &eccState{
			rowWords: rw,
			check:    make([]uint64, rows),
			shadow:   make([]uint64, rw*rows),
			quar:     make([]atomic.Bool, rows),
			quarBits: make([]uint32, rows),
			scratch:  make([]uint64, rw),
		}
		s.ecc = e
	}
	for i := 0; i < rows; i++ {
		row := s.array.PeekRow(uint32(i))
		copy(e.shadow[i*rw:(i+1)*rw], row)
		atomic.StoreUint64(&e.check[i], checkWord(row))
		e.quar[i].Store(false)
		e.quarBits[i] = 0
	}
	e.nQuar = 0
}

// EccEnabled reports whether per-row error coding is on.
func (s *Slice) EccEnabled() bool { return s.ecc != nil }

// EccStats returns the error-coding counters (zero value when ECC is
// off).
func (s *Slice) EccStats() EccStats {
	if s.ecc == nil {
		return EccStats{}
	}
	return s.ecc.st
}

// QuarantinedRows returns how many rows are out of service.
func (s *Slice) QuarantinedRows() int {
	if s.ecc == nil {
		return 0
	}
	return s.ecc.nQuar
}

// Quarantined reports whether one row is out of service.
func (s *Slice) Quarantined(idx uint32) bool {
	return s.ecc != nil && s.ecc.quar[idx].Load()
}

// shadowRow returns the mutable shadow image of a row.
func (e *eccState) shadowRow(idx uint32) []uint64 {
	off := int(idx) * e.rowWords
	return e.shadow[off : off+e.rowWords]
}

// logicalRow returns a row's logical contents for maintenance scans:
// the authoritative shadow when the row is quarantined, the stored row
// otherwise. Maintenance (locate, Records, bulk scans) always sees the
// true database even while a row is out of service.
func (s *Slice) logicalRow(idx uint32, stored []uint64) []uint64 {
	if s.ecc != nil && s.ecc.quar[idx].Load() {
		return s.ecc.shadowRow(idx)
	}
	return stored
}

// quarantine takes a row out of service, recording how many stored
// bits differ from the shadow at this moment — the corrupt-bit ledger
// a later scrub settles. (Writes that land in the shadow while the row
// is quarantined widen the raw restore diff without being corruption,
// which is why the count is taken now.)
func (e *eccState) quarantine(idx uint32, row []uint64) {
	if e.quar[idx].Load() {
		return
	}
	diff := 0
	sh := e.shadowRow(idx)
	for w := range row {
		diff += bits.OnesCount64(row[w] ^ sh[w])
	}
	e.quar[idx].Store(true)
	e.quarBits[idx] = uint32(diff)
	e.nQuar++
	e.st.Uncorrectable++
}

// fetchChecked is the slice's one row-fetch path for charged lookups
// and insert probes. With ECC off it is the array fetch plus a nil
// check — the zero-allocation hot path. With ECC on it verifies the
// row against its check word, corrects a single-bit error in place,
// and quarantines an uncorrectable row. ok=false means the row is
// unavailable this access (quarantined, just quarantined, or a
// transient read error that persisted past one retry); the caller
// skips the row and marks the lookup as erred.
func (s *Slice) fetchChecked(idx uint32, tr *trace.Trace) ([]uint64, bool) {
	if s.ecc == nil {
		row, _ := s.array.FetchRow(idx) // unprotected: errors are invisible
		return row, true
	}
	e := s.ecc
	if e.quar[idx].Load() {
		e.st.QuarantineSkips++
		return nil, false
	}
	row, ok := s.array.FetchRow(idx)
	if !ok {
		e.st.ReadErrors++
		row, ok = s.array.FetchRow(idx) // one retry: transient means transient
		if !ok {
			e.st.ReadErrors++
			return nil, false
		}
	}
	e.st.CheckedFetches++
	stored := e.check[idx]
	got := checkWord(row)
	if got == stored {
		return row, true
	}
	delta := got ^ stored
	dSyn := uint32(delta)
	dPar := delta >> 32 & 1
	if dPar == 1 && dSyn != 0 {
		// Odd flip count with a position-code syndrome: a single-bit
		// error at position dSyn-1. Correct on the scratch copy and
		// publish the fix through the row's seqlock window
		// (scrub-on-read) — storage is never mutated with plain stores,
		// so concurrent snapshot readers cannot see a half-fixed row.
		pos := int(dSyn - 1)
		if w := pos >> 6; w < len(row) {
			copy(e.scratch, row)
			e.scratch[w] ^= 1 << uint(pos&63)
			if checkWord(e.scratch) == stored {
				e.st.CorrectedBits++
				tr.Ecc(idx, 1, false)
				s.array.PublishRow(idx, e.scratch)
				return e.scratch, true
			}
		}
	}
	// Even flip count (or an aliased syndrome): detectable but not
	// correctable. Out of service until scrubbed.
	e.quarantine(idx, row)
	tr.Ecc(idx, 0, true)
	return nil, false
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	RepairedRows int // rows whose stored bits were restored from the shadow
	RepairedBits int // raw bit difference restored (includes shadow-side writes)
	Released     int // quarantined rows returned to service
}

// Scrub re-verifies every row against the insert-side shadow and
// restores any divergence: quarantined rows get their true contents
// back (and return to service), and every check word is recomputed.
// It is maintenance — no accesses are charged and no faults injected —
// and it is the episode boundary for the health state machine above:
// after a scrub the slice is exactly its logical contents again.
// Restores publish through each row's seqlock window (check word
// refreshed inside the window, quarantine released only after the
// restored row is published), so lock-free readers running concurrently
// with a scrub see every row either pre- or post-restore, never mid-
// copy. No-op (zero report) with ECC off.
func (s *Slice) Scrub() ScrubReport {
	var rep ScrubReport
	if s.ecc == nil {
		return rep
	}
	e := s.ecc
	e.st.ScrubRuns++
	rows := s.cfg.Rows()
	for i := 0; i < rows; i++ {
		idx := uint32(i)
		live := s.array.PeekRow(idx)
		sh := e.shadowRow(idx)
		diff := 0
		for w := range live {
			diff += bits.OnesCount64(live[w] ^ sh[w])
		}
		if diff > 0 {
			row := s.array.BeginRowMaint(idx)
			copy(row, sh)
			atomic.StoreUint64(&e.check[idx], checkWord(row))
			s.array.CommitRowUpdate(idx)
			rep.RepairedRows++
			rep.RepairedBits += diff
		} else {
			atomic.StoreUint64(&e.check[idx], checkWord(live))
		}
		if e.quar[i].Load() {
			e.quar[i].Store(false)
			e.nQuar--
			rep.Released++
			e.st.ScrubRepairedBits += uint64(e.quarBits[i])
			e.quarBits[i] = 0
		}
	}
	e.st.ScrubRepairedRows += uint64(rep.RepairedRows)
	e.st.ScrubReleased += uint64(rep.Released)
	return rep
}

// resetECC clears the sidecar alongside Slice.Clear: empty array,
// empty shadow, zero check words, no quarantine. Counters are kept
// (they describe history, like the slice's activity stats).
func (s *Slice) resetECC() {
	if s.ecc == nil {
		return
	}
	e := s.ecc
	for i := range e.shadow {
		e.shadow[i] = 0
	}
	for i := range e.check {
		atomic.StoreUint64(&e.check[i], 0)
		e.quar[i].Store(false)
		e.quarBits[i] = 0
	}
	e.nQuar = 0
}
