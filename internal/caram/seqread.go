package caram

import (
	"runtime"
	"sync/atomic"

	"caram/internal/bitutil"
	"caram/internal/match"
	"caram/internal/trace"
)

// maxSnapshotRetries bounds how many times a Reader re-attempts a
// row snapshot torn by a concurrent writer before giving up and
// escalating to the locked path. A seqlock read section is a handful
// of word loads, so colliding this many consecutive times means the
// writer side is saturated and waiting behind the lock is the better
// strategy anyway.
const maxSnapshotRetries = 16

// Reader is a per-goroutine lock-free search port over one slice: the
// software analogue of replicating §3.3's stateless comparator bank so
// several search pipelines can stream rows concurrently. A Reader owns
// its snapshot buffer, its private match kernel (match.Searcher) and
// its result scratch, so Lookup/LookupBest/Contains allocate nothing
// and share no mutable state with other Readers. Rows are observed
// through the array's per-row seqlock (mem.Array.TrySnapshotRow): a
// snapshot is only accepted when the row's version is even and
// unchanged across the copy, so a Reader never sees a torn row —
// every row it searches is exactly some state a writer published.
//
// Every method reports ok=false when the lock-free protocol cannot
// certify an answer — a probed row is quarantined, its snapshot kept
// tearing past maxSnapshotRetries, or (with ECC on) the snapshot's
// recomputed check word disagrees with the stored one. The caller
// falls back to the serialized locked path, which owns the full
// detect/correct/quarantine protocol; the lock-free path itself never
// corrects, never quarantines, and never returns unverified data, so
// PR 5's never-silently-wrong contract is preserved.
//
// A Reader is single-owner (one goroutine at a time) but any number
// of Readers may run concurrently with each other and with the one
// serialized writer.
type Reader struct {
	s       *Slice
	row     []uint64 // snapshot buffer, one row
	sr      *match.Searcher
	res     match.Result
	retries int // torn snapshots observed since last TakeRetries
}

// NewReader builds a lock-free search port for this slice. The slice's
// construction (including EnableECC and fault installation) must be
// complete before the first Reader runs.
func (s *Slice) NewReader() *Reader {
	return &Reader{
		s:   s,
		row: make([]uint64, s.array.RowWords()),
		sr:  match.NewSearcher(s.layout, s.cfg.MatchProcessors),
	}
}

// TakeRetries returns how many torn snapshots this Reader re-read
// since the last call, and resets the count. The subsystem layer
// aggregates these into the caram_search_retries_total metric.
func (r *Reader) TakeRetries() int {
	n := r.retries
	r.retries = 0
	return n
}

// snapshot fills r.row with a version-consistent copy of one row.
// charged selects the accounted read port (lookups) versus the free
// diagnostic port (Contains). ok=false escalates: the row is
// quarantined, kept tearing, or failed its check word.
func (r *Reader) snapshot(idx uint32, charged bool) bool {
	s := r.s
	for attempt := 0; attempt < maxSnapshotRetries; attempt++ {
		if s.ecc != nil && s.ecc.quar[idx].Load() {
			return false
		}
		var ok bool
		if charged {
			ok = s.array.TrySnapshotRow(idx, r.row)
		} else {
			ok = s.array.TryPeekRow(idx, r.row)
		}
		if !ok {
			// Torn by a concurrent writer: yield and re-read.
			r.retries++
			runtime.Gosched()
			continue
		}
		if s.ecc != nil && checkWord(r.row) != atomic.LoadUint64(&s.ecc.check[idx]) {
			// The snapshot is a legally published row (the version
			// validated), so a mismatch means either real corruption or
			// a benign row/check skew (e.g. the check was republished
			// after our copy). Both escalate: the locked path re-reads
			// and owns the correct/quarantine decision.
			return false
		}
		return true
	}
	return false
}

// Lookup is the lock-free LookupTraced: the same probe chain, reach
// rule, trace events and statistics, run entirely on seqlock
// snapshots. ok=false means the protocol could not certify the
// answer and the caller must retry on the locked path; no statistics
// are recorded and the partial result is meaningless then.
func (r *Reader) Lookup(search bitutil.Ternary, tr *trace.Trace) (LookupResult, bool) {
	s := r.s
	home := s.Index(search.Value)
	res := LookupResult{HomeBucket: home}
	rows := s.cfg.Rows()
	reach := 0
	slots, matches, passes := 0, 0, 0
	for d := 0; d <= reach && d < rows; d++ {
		idx := uint32((int(home) + d) % rows)
		if !r.snapshot(idx, true) {
			return LookupResult{}, false
		}
		res.RowsRead++
		if d == 0 {
			reach = int(s.layout.ReadAux(r.row))
		}
		r.sr.SearchInto(&r.res, r.row, search)
		m := &r.res
		if tr.Enabled() {
			tr.Probe(idx, d, m.SlotsTested, m.Count, m.Matched())
			slots += m.SlotsTested
			matches += m.Count
			passes += m.Passes
		}
		if m.Matched() {
			res.Found = true
			res.Record = m.Record
			res.Multi = m.Multi()
			break
		}
	}
	if tr.Enabled() {
		tr.Match(slots, matches, passes)
		tr.Lookup(home, reach, res.RowsRead, res.Found)
	}
	s.recordLookup(res)
	return res, true
}

// LookupBest is the lock-free LookupBestTraced: full-reach scan for
// the best-scoring match, on seqlock snapshots, with the same
// escalation contract as Lookup.
func (r *Reader) LookupBest(search bitutil.Ternary, score func(match.Record) int, tr *trace.Trace) (LookupResult, bool) {
	s := r.s
	home := s.Index(search.Value)
	res := LookupResult{HomeBucket: home}
	rows := s.cfg.Rows()
	reach := 0
	bestScore := 0
	slots, matches, passes := 0, 0, 0
	for d := 0; d <= reach && d < rows; d++ {
		idx := uint32((int(home) + d) % rows)
		if !r.snapshot(idx, true) {
			return LookupResult{}, false
		}
		res.RowsRead++
		if d == 0 {
			reach = int(s.layout.ReadAux(r.row))
		}
		r.sr.SearchInto(&r.res, r.row, search)
		m := &r.res
		if tr.Enabled() {
			tr.Probe(idx, d, m.SlotsTested, m.Count, m.Count > 0)
			slots += m.SlotsTested
			matches += m.Count
			passes += m.Passes
		}
		if m.Count == 0 {
			continue
		}
		for i := 0; i < s.layout.Slots(); i++ {
			if m.Vector[i/64]>>uint(i%64)&1 == 0 {
				continue
			}
			rec, _ := s.layout.ReadSlot(r.row, i)
			if sc := score(rec); !res.Found || sc > bestScore {
				res.Found, res.Record, bestScore = true, rec, sc
			}
		}
	}
	if tr.Enabled() {
		tr.Match(slots, matches, passes)
		tr.Lookup(home, reach, res.RowsRead, res.Found)
	}
	s.recordLookup(res)
	return res, true
}

// Contains is the lock-free exact-key membership test (the uncharged
// diagnostic, like Slice.Contains). ok=false escalates as in Lookup.
func (r *Reader) Contains(key bitutil.Ternary) (found, ok bool) {
	s := r.s
	home := s.Index(key.Value)
	rows := s.cfg.Rows()
	reach := 0
	for d := 0; d <= reach && d < rows; d++ {
		idx := uint32((int(home) + d) % rows)
		if !r.snapshot(idx, false) {
			return false, false
		}
		if d == 0 {
			reach = int(s.layout.ReadAux(r.row))
		}
		for i := 0; i < s.layout.Slots(); i++ {
			rec, valid := s.layout.ReadSlot(r.row, i)
			if valid && rec.Key.Equal(key) {
				return true, true
			}
		}
	}
	return false, true
}
