# Build / verification targets.
#
#   make check          tier-1: vet + build + full test suite
#   make race           race-detector pass over the concurrent packages
#   make stress         tier-2: the concurrency stress tests under -race
#   make fuzz           10s per wire-protocol fuzz target
#   make bench          the parallel-throughput server benchmark
#   make bench-json     hot-path benchmarks frozen into BENCH_PR3.json
#   make alloc-guard    zero-allocation regression tests for the
#                       search hot path (match, caram, server)
#   make trace-guard    tracing-layer gate: ring races under -race,
#                       slowlog admission property, zero-alloc with
#                       tracing compiled in (off and on-unadmitted)
#   make metrics-smoke  end-to-end observability check: live server,
#                       /metrics + /debug/traces scrape, SLOWLOG/EXPLAIN
#                       and HEALTH over the wire, graceful shutdown
#   make chaos          fault-injection capstone under -race: mixed ops
#                       against engines with live soft-error injectors,
#                       exact ECC/injector counter reconciliation (incl.
#                       the seqlock variant with concurrent scrubs)
#   make seqlock-guard  wait-free search gate: torn-read/linearizability
#                       suites under -race, the zero-alloc guards with
#                       the seqlock read path compiled in, and the
#                       byte-exact golden session
#   make typed-guard    typed-engine gate: the LPM/pktclass/trigram
#                       differential oracle suites and lifecycle churn
#                       under -race, the parser-hardening table, the
#                       zero-alloc guard with typed engines registered,
#                       and the byte-exact golden session serving all
#                       four engine types in one process
#   make cluster-guard  cluster-router gate: the whole router suite
#                       under -race (ring determinism + rebalance,
#                       pool FIFO/breaker semantics, scatter/gather,
#                       the byte-exact golden session through a live
#                       2-backend cluster, kill-a-backend failover
#                       under stress) plus the forward-path
#                       zero-alloc guard
#   make crash-guard    durability gate: the WAL suite (torn-tail
#                       recovery at every byte offset, snapshot
#                       truncation, graceful-drain Close) under -race,
#                       then the kill-injection harness against the
#                       real binary (SIGKILL mid-fsync, restart,
#                       acked-present / unacked-absent)
#   make ci             the CI gate: check + race + alloc-guard +
#                       trace-guard + seqlock-guard + typed-guard +
#                       cluster-guard + crash-guard + chaos +
#                       metrics-smoke
#   make all            everything above, in that order

GO       ?= go
FUZZTIME ?= 10s

.PHONY: all check vet race stress fuzz bench bench-json alloc-guard trace-guard seqlock-guard typed-guard cluster-guard crash-guard chaos metrics-smoke ci

all: check race stress fuzz bench trace-guard seqlock-guard typed-guard cluster-guard crash-guard chaos metrics-smoke

ci: check race alloc-guard trace-guard seqlock-guard typed-guard cluster-guard crash-guard chaos metrics-smoke

check: vet
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/server ./internal/subsystem ./internal/metrics ./internal/trace ./internal/wal

metrics-smoke:
	$(GO) run ./cmd/metrics-smoke

# Fault-injection capstone: 32 goroutines of mixed operations against
# ECC-protected engines whose memory arrays have live fault injectors,
# under the race detector, with exact counter reconciliation at the end.
chaos:
	$(GO) test -race -run Chaos -count=1 ./internal/subsystem

# Tier-2: the mixed-workload stress tests (>=32 goroutines, >=10k ops)
# under the race detector, across every package that defines them.
stress:
	$(GO) test -run Stress -race ./...

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzExec -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzParseVec -fuzztime $(FUZZTIME) ./internal/server

bench:
	$(GO) test -run '^$$' -bench ServerParallelSearch -benchmem .

# Zero-allocation regression guard: testing.AllocsPerRun == 0 on the
# core search paths (row match kernel, slice lookup, server SEARCH) and
# on the router forward path with an idle trace collector attached.
alloc-guard:
	$(GO) test -run ZeroAlloc -count=1 ./internal/match ./internal/caram ./internal/server
	$(GO) test -run 'ForwardPathAllocs|RouterUntracedZeroAlloc' -count=1 ./internal/cluster

# Durability gate: the whole WAL suite under the race detector (the
# exhaustive torn-tail property, snapshot truncation + replay gating,
# CREATE/DROP replay, relaxed-policy seal flushing), the server-side
# graceful-drain / WAL STATUS suites, the fleet WAL STATUS merge, and
# the kill-injection harness — the real binary SIGKILLed mid-group-
# commit (the -wal-slow-sync hook widens the fsync window), restarted,
# and audited: every acked write present, every unacked write absent.
# CRASH_GUARD_ITERS (default 3) extends the kill loop for soak runs.
crash-guard:
	$(GO) test -race -count=1 ./internal/wal
	$(GO) test -race -run 'Close|WALStatus|WALExec' -count=1 ./internal/server
	$(GO) test -race -run 'RouterWALStatus' -count=1 ./internal/cluster
	$(GO) test -run 'Crash|GracefulShutdown' -count=1 ./cmd/caram-server

# Tracing-layer gate: the lock-free ring under the race detector, the
# slowlog admission property (admitted exactly when latency exceeds the
# threshold), the per-command pipelined-burst attribution, the wire
# *TID annotation / TRACE GET suites, the cluster tracing suites (the
# stitched end-to-end trace through a live router, fleet SLOWLOG /
# METRICS / TRACE merges, traced-vs-untraced transparency), and the
# steady-state zero-alloc guarantee with tracing compiled in.
trace-guard:
	$(GO) test -race -count=1 ./internal/trace
	$(GO) test -race -run 'Pipelined|Slowlog|Explain|SlowRequest|TracingOn|WireAnnotation|TraceGet' -count=1 ./internal/server
	$(GO) test -race -run 'ClusterTracing|RouterSlowlog|RouterMetricsAggregation|RouterTraceGet|RouterTracedTransparency|RouterHealthMergeOrder|RouterUntraced' -count=1 ./internal/cluster
	$(GO) test -run 'TracingOnSteadyStateAllocs|ZeroAlloc' -count=1 ./internal/server

# Wait-free search gate: the torn-read/linearizability suites (caram
# Reader and subsystem dispatch) under the race detector, the wait-free
# code-level assertion and forced-retry telemetry, the zero-allocation
# guards with the seqlock path compiled in, and the byte-exact golden
# session (nothing on the wire may change).
seqlock-guard:
	$(GO) test -race -run 'TestReader' -count=1 ./internal/caram
	$(GO) test -race -run 'SearchWaitFree|SearchTornReadStress|ForcedRetryTelemetry' -count=1 ./internal/subsystem
	$(GO) test -run ZeroAlloc -count=1 ./internal/match ./internal/caram ./internal/server
	$(GO) test -run GoldenSession -count=1 ./internal/server

# Typed-engine gate: every differential oracle suite (wire answers vs
# the simulation packages' trie / linear classifier / trigram slice),
# the 16-goroutine mixed-ops churn variants, and engine lifecycle churn
# all run under the race detector; then the typed parser-hardening
# table, the zero-alloc guard with typed engines registered, and the
# golden session that serves exact, lpm, pktclass, and trigram engines
# from one server process.
typed-guard:
	$(GO) test -race -run 'Typed' -count=1 ./internal/server ./internal/subsystem
	$(GO) test -run 'ZeroAlloc' -count=1 ./internal/server
	$(GO) test -run GoldenSession -count=1 ./internal/server

# Cluster-router gate: everything in internal/cluster under the race
# detector — ring determinism and the rebalance property, pool FIFO
# reply matching and breaker/probe recovery, the transparency
# differential, scatter/gather merges, the byte-exact golden session
# through a live two-backend cluster, and the kill-a-backend failover
# storm — then the forward-path zero-alloc guard without -race (the
# race runtime allocates).
cluster-guard:
	$(GO) test -race -count=1 ./internal/cluster
	$(GO) test -run ForwardPathAllocs -count=1 ./internal/cluster

# Freeze the hot-path benchmarks into a versioned JSON artifact.
bench-json:
	$(GO) test -run '^$$' -bench 'RowMatch|ServerSearchZeroAlloc|ServerSearchInstrumented|MSearchBatched|SliceLookup$$' \
		-benchmem . | $(GO) run ./cmd/bench2json > BENCH_PR3.json
	$(GO) test -run '^$$' -bench SearchUnderWriteContention -benchmem \
		./internal/subsystem | $(GO) run ./cmd/bench2json > BENCH_PR6.json
	$(GO) test -run '^$$' -bench 'RouterPipelinedSearch$$|UnpipelinedProxySearch|DirectServerSearch|RouterForwardPath$$' \
		-benchmem ./internal/cluster | $(GO) run ./cmd/bench2json > BENCH_PR8.json
	$(GO) test -run '^$$' -bench 'RouterForwardPath|RouterPipelinedSearch/depth8' \
		-benchmem ./internal/cluster | $(GO) run ./cmd/bench2json > BENCH_PR9.json
	$(GO) test -run '^$$' -bench WALInsert -benchtime 2000x \
		-benchmem ./internal/wal | $(GO) run ./cmd/bench2json > BENCH_PR10.json
