package caram

// One benchmark per table and figure of the paper's evaluation, plus
// microbenchmarks of the core structures. The per-experiment benches
// report the experiment's headline quantities via b.ReportMetric so
// `go test -bench .` regenerates the numbers EXPERIMENTS.md records;
// cmd/caram-bench prints the full tables.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"caram/internal/bitutil"
	"caram/internal/cam"
	"caram/internal/caram"
	"caram/internal/cost"
	"caram/internal/hash"
	"caram/internal/iproute"
	"caram/internal/match"
	"caram/internal/mem"
	"caram/internal/metrics"
	"caram/internal/pktclass"
	"caram/internal/server"
	"caram/internal/subsystem"
	"caram/internal/swsearch"
	"caram/internal/trigram"
	"caram/internal/workload"
)

// Lazily-built shared datasets (1/16-scale IP table, 1/64-scale
// trigram DB — every load factor matches the paper's).
var (
	ipOnce  sync.Once
	ipTable []iproute.Prefix

	triOnce sync.Once
	triDB   []trigram.Entry
)

func benchIPTable() []iproute.Prefix {
	ipOnce.Do(func() {
		ipTable = iproute.Generate(iproute.GenConfig{Prefixes: iproute.PaperTableSize / 16, Seed: 1})
	})
	return ipTable
}

func benchTriDB() []trigram.Entry {
	triOnce.Do(func() {
		triDB = trigram.Generate(trigram.GenConfig{Entries: trigram.PaperEntries / 64, Seed: 1})
	})
	return triDB
}

// --- Table 1 ---

// BenchmarkTable1MatchProcessor exercises a full 1600-bit-row match
// (expand, match vector, priority encode, extract) and reports the
// synthesis model's critical path.
func BenchmarkTable1MatchProcessor(b *testing.B) {
	layout := match.Layout{RowBits: 1600, KeyBits: 64, DataBits: 0, AuxBits: 0}
	proc := match.NewProcessor(layout, 0)
	row := make([]uint64, bitutil.RowWords(1600))
	for i := 0; i < layout.Slots(); i++ {
		rec := match.Record{Key: bitutil.Exact(bitutil.FromUint64(uint64(i * 977)))}
		if err := layout.WriteSlot(row, i, rec); err != nil {
			b.Fatal(err)
		}
	}
	key := bitutil.Exact(bitutil.FromUint64(uint64(12 * 977)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := proc.Search(row, key); !res.Matched() {
			b.Fatal("match lost")
		}
	}
	s := match.Synthesize(1600, 8)
	b.ReportMetric(s.CriticalPathNs(), "model-delay-ns")
	b.ReportMetric(float64(s.TotalCells()), "model-cells")
}

// --- Figure 6 ---

// BenchmarkFig6Cell reports the cell-size ratios of Figure 6(a).
func BenchmarkFig6Cell(b *testing.B) {
	var comp []cost.SchemeComparison
	for i := 0; i < b.N; i++ {
		comp = cost.Fig6Comparison(cost.Default, cost.DefaultFig6)
	}
	for _, c := range comp {
		if c.Name == "16T SRAM TCAM" {
			b.ReportMetric(c.RelativeArea, "16T-area-x")
			b.ReportMetric(c.RelativePower, "16T-power-x")
		}
		if c.Name == "6T dynamic TCAM" {
			b.ReportMetric(c.RelativeArea, "6T-area-x")
			b.ReportMetric(c.RelativePower, "6T-power-x")
		}
	}
}

// --- Table 2 ---

// BenchmarkTable2IPLookup builds each Table 2 design and measures LPM
// lookup throughput, reporting the analytic AMALu.
func BenchmarkTable2IPLookup(b *testing.B) {
	table := benchIPTable()
	for _, d := range iproute.Table2Designs {
		d := d
		d.R -= 4 // keep the paper's alpha at 1/16 scale
		b.Run("design"+d.Name, func(b *testing.B) {
			ev, err := iproute.Evaluate(table, d, 1)
			if err != nil {
				b.Fatal(err)
			}
			rng := workload.NewRand(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := table[rng.Intn(len(table))]
				if _, _, ok := iproute.LPMLookup(ev.Slice, p.Addr); !ok {
					b.Fatal("stored prefix unroutable")
				}
			}
			b.ReportMetric(ev.AMALu, "AMALu")
			b.ReportMetric(ev.AMALs, "AMALs")
			b.ReportMetric(ev.SpilledPct, "spilled-%")
		})
	}
}

// --- Table 3 / Figure 7 ---

// BenchmarkTable3Trigram builds each Table 3 design and measures
// exact-match lookup throughput, reporting the analytic AMAL.
func BenchmarkTable3Trigram(b *testing.B) {
	db := benchTriDB()
	for _, d := range trigram.Table3Designs {
		d := d
		d.R -= 6
		b.Run("design"+d.Name, func(b *testing.B) {
			ev, err := trigram.Evaluate(db, d)
			if err != nil {
				b.Fatal(err)
			}
			rng := workload.NewRand(3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := db[rng.Intn(len(db))]
				if _, _, ok := trigram.Lookup(ev.Slice, e.Text); !ok {
					b.Fatal("stored trigram lost")
				}
			}
			b.ReportMetric(ev.AMAL, "AMAL")
			b.ReportMetric(ev.OverflowingPct, "overflowing-%")
		})
	}
}

// BenchmarkFig7Occupancy reports design A's occupancy distribution.
func BenchmarkFig7Occupancy(b *testing.B) {
	db := benchTriDB()
	d := trigram.Table3Designs[0]
	d.R -= 6
	ev, err := trigram.Evaluate(db, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var mean, sd float64
	for i := 0; i < b.N; i++ {
		h := ev.OccupancyHistogram()
		mean, sd = h.Mean(), h.StdDev()
	}
	b.ReportMetric(mean, "mean-occupancy")
	b.ReportMetric(sd, "stddev")
}

// --- Figure 8 ---

// BenchmarkFig8AreaPower reports the application-level comparisons.
func BenchmarkFig8AreaPower(b *testing.B) {
	d := iproute.Table2Designs[3]
	t := trigram.Table3Designs[0]
	var ip, tri cost.AppComparison
	for i := 0; i < b.N; i++ {
		ip = cost.Fig8(cost.Default, cost.Fig8Params{
			App: "ip", BaselineKind: cost.TCAM6T, BaselineCells: 198795 * 32,
			BaselineRateHz: 143e6, CapacityBits: d.CapacityBits(),
			LoadFactor: float64(iproute.PaperTableSize) / float64(d.Capacity()),
			BucketBits: float64(d.Slots()) * 64, Slots: float64(d.Slots()),
			CARAMRateHz: 143e6, ComparePower: true,
		})
		tri = cost.Fig8(cost.Default, cost.Fig8Params{
			App: "trigram", BaselineKind: cost.CAMStacked,
			BaselineCells: float64(trigram.PaperEntries) * 128,
			CapacityBits:  t.CapacityBits(),
			LoadFactor:    float64(trigram.PaperEntries) / float64(t.Capacity()),
		})
	}
	b.ReportMetric(ip.AreaSavingPct, "ip-area-saving-%")
	b.ReportMetric(ip.PowerSavingPct, "ip-power-saving-%")
	b.ReportMetric(1/tri.AreaRatio, "trigram-area-x")
}

// --- §3.4 bandwidth ---

// BenchmarkSubsystemBandwidth simulates banked engines and reports
// requests per cycle against the analytical formula.
func BenchmarkSubsystemBandwidth(b *testing.B) {
	for _, banks := range []int{1, 8} {
		banks := banks
		b.Run(map[int]string{1: "1bank", 8: "8banks"}[banks], func(b *testing.B) {
			sl := caram.MustNew(caram.Config{
				IndexBits: 12, RowBits: 8*(1+32+16) + 8, KeyBits: 32, DataBits: 16,
				Tech: mem.DRAM, Index: hash.NewMultShift(12),
			})
			rng := workload.NewRand(4)
			keys := make([]bitutil.Ternary, 4096)
			for i := range keys {
				keys[i] = bitutil.Exact(bitutil.FromUint64(uint64(rng.Uint32())))
			}
			e := &subsystem.Engine{Name: "bw", Main: sl, Banks: banks}
			var res subsystem.SimResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = e.Simulate(keys, subsystem.TrafficConfig{QueueDepth: 256}, 1)
			}
			b.ReportMetric(res.ThroughputPerCy, "req-per-cycle")
			b.ReportMetric(cost.CARAMBandwidth(banks, 6, 1), "formula-req-per-cycle")
		})
	}
}

// --- Microbenchmarks of the core structures ---

func benchSlice(b *testing.B, tech mem.Technology) *caram.Slice {
	b.Helper()
	sl := caram.MustNew(caram.Config{
		IndexBits: 12, RowBits: 16*(1+32+16) + 8, KeyBits: 32, DataBits: 16,
		Tech: tech, Index: hash.NewMultShift(12),
	})
	for i := 0; i < 32768; i++ {
		if err := sl.Insert(match.Record{
			Key:  bitutil.Exact(bitutil.FromUint64(uint64(i))),
			Data: bitutil.FromUint64(uint64(i)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return sl
}

// BenchmarkSliceLookup measures simulator lookup speed (host-side).
func BenchmarkSliceLookup(b *testing.B) {
	sl := benchSlice(b, mem.SRAM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sl.Lookup(bitutil.Exact(bitutil.FromUint64(uint64(i % 32768)))).Found {
			b.Fatal("lost record")
		}
	}
}

// BenchmarkSliceInsert measures placement speed.
func BenchmarkSliceInsert(b *testing.B) {
	sl := caram.MustNew(caram.Config{
		IndexBits: 16, RowBits: 16*(1+32+16) + 8, KeyBits: 32, DataBits: 16,
		Index: hash.NewMultShift(16), AllowDuplicates: true,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i != 0 && i%(sl.Config().Capacity()/2) == 0 {
			sl.Clear()
		}
		if err := sl.Insert(match.Record{Key: bitutil.Exact(bitutil.FromUint64(uint64(i)))}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCAMSearch measures the TCAM baseline's full-device search.
func BenchmarkCAMSearch(b *testing.B) {
	d := cam.MustNew(cam.Config{Entries: 4096, KeyBits: 32, Kind: cam.Ternary})
	for i := 0; i < 4096; i++ {
		if err := d.Append(match.Record{Key: bitutil.Exact(bitutil.FromUint64(uint64(i)))}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !d.Search(bitutil.Exact(bitutil.FromUint64(uint64(i % 4096)))).Found {
			b.Fatal("lost entry")
		}
	}
}

// BenchmarkTrieLookup measures the software LPM baseline.
func BenchmarkTrieLookup(b *testing.B) {
	table := benchIPTable()
	tr := swsearch.NewTrie(32)
	for _, p := range table {
		tr.Insert(uint64(p.Addr), p.Len, uint64(p.NextHop))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(uint64(table[i%len(table)].Addr))
	}
}

// BenchmarkDJBHash measures the trigram index generator.
func BenchmarkDJBHash(b *testing.B) {
	key := []byte("plend fack vu")
	b.SetBytes(int64(len(key)))
	for i := 0; i < b.N; i++ {
		hash.DJBBytes(key)
	}
}

// BenchmarkPacketClassification measures CA-RAM-engine classification
// throughput on a synthetic ACL, reporting overflow pressure.
func BenchmarkPacketClassification(b *testing.B) {
	rules := pktclass.GenerateRules(pktclass.GenRulesConfig{Rules: 2000, Seed: 1})
	c, err := pktclass.NewCARAMClassifier(rules, pktclass.CARAMConfig{IndexBits: 9, Slots: 64})
	if err != nil {
		b.Fatal(err)
	}
	trace := pktclass.GenerateTrace(rules, 8192, 0.25, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(trace[i%len(trace)])
	}
	main, ovfl := c.Entries()
	b.ReportMetric(float64(ovfl)/float64(main+ovfl)*100, "overflow-%")
}

// BenchmarkServerParallelSearch measures protocol-level search
// throughput when every client targets its own engine — the traffic
// pattern the per-engine locking model exists for. The per-engine case
// runs on the server's real path (subsystem.Concurrent); the
// global-mutex case reproduces the old design by funnelling the same
// requests through one lock. On a multi-core host the per-engine case
// scales with cores; "goroutines" forces contention even at
// GOMAXPROCS=1 so the two cases stay comparable on throttled CI. The
// analytic bandwidth model (§3.4: B scales with the number of
// independent slices) is reported alongside the measured numbers.
func BenchmarkServerParallelSearch(b *testing.B) {
	const (
		nEngines = 8
		nKeys    = 4096
	)
	mk := func(b *testing.B) *server.Server {
		sub := subsystem.New(0)
		for e := 0; e < nEngines; e++ {
			sl := caram.MustNew(caram.Config{
				IndexBits: 10, RowBits: 8*(1+64+32) + 8, KeyBits: 64, DataBits: 32,
				Index: hash.NewMultShift(10),
			})
			for k := 0; k < nKeys; k++ {
				if err := sl.Insert(match.Record{
					Key:  bitutil.Exact(bitutil.FromUint64(uint64(k))),
					Data: bitutil.FromUint64(uint64(k)),
				}); err != nil {
					b.Fatal(err)
				}
			}
			if err := sub.AddEngine(&subsystem.Engine{Name: fmt.Sprintf("e%d", e), Main: sl}); err != nil {
				b.Fatal(err)
			}
		}
		return server.New(sub)
	}
	run := func(b *testing.B, exec func(string) string) {
		b.SetParallelism(nEngines) // nEngines goroutines per GOMAXPROCS
		var ctr int64
		b.RunParallel(func(pb *testing.PB) {
			eng := "e" + strconv.FormatInt(atomic.AddInt64(&ctr, 1)%nEngines, 10)
			i := 0
			for pb.Next() {
				line := "SEARCH " + eng + " " + strconv.FormatUint(uint64(i%nKeys), 16)
				if resp := exec(line); !strings.HasPrefix(resp, "HIT") {
					b.Fatal(resp)
				}
				i++
			}
		})
		b.ReportMetric(cost.CARAMBandwidth(nEngines, 1, 1), "model-req-per-cycle")
	}
	b.Run("per-engine-locks", func(b *testing.B) {
		s := mk(b)
		run(b, s.Exec)
	})
	b.Run("global-mutex-baseline", func(b *testing.B) {
		s := mk(b)
		var mu sync.Mutex
		run(b, func(line string) string {
			mu.Lock()
			defer mu.Unlock()
			return s.Exec(line)
		})
	})
}

// BenchmarkServerSearchInstrumented prices the observability layer: the
// identical single-goroutine SEARCH workload through a server with
// metrics (the default — every op pays two atomic adds plus a histogram
// bucket add and a clock read) and one built with
// server.WithoutMetrics() (the bare pre-metrics path). The delta
// between the two sub-benchmarks is the per-op instrumentation
// overhead; CHANGES.md records the measured numbers.
func BenchmarkServerSearchInstrumented(b *testing.B) {
	const nKeys = 4096
	mk := func(b *testing.B, opts ...server.Option) *server.Server {
		sub := subsystem.New(0)
		sl := caram.MustNew(caram.Config{
			IndexBits: 10, RowBits: 8*(1+64+32) + 8, KeyBits: 64, DataBits: 32,
			Index: hash.NewMultShift(10),
		})
		for k := 0; k < nKeys; k++ {
			if err := sl.Insert(match.Record{
				Key:  bitutil.Exact(bitutil.FromUint64(uint64(k))),
				Data: bitutil.FromUint64(uint64(k)),
			}); err != nil {
				b.Fatal(err)
			}
		}
		if err := sub.AddEngine(&subsystem.Engine{Name: "db", Main: sl}); err != nil {
			b.Fatal(err)
		}
		return server.New(sub, opts...)
	}
	run := func(b *testing.B, s *server.Server) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			line := "SEARCH db " + strconv.FormatUint(uint64(i%nKeys), 16)
			if resp := s.Exec(line); !strings.HasPrefix(resp, "HIT") {
				b.Fatal(resp)
			}
		}
	}
	b.Run("instrumented", func(b *testing.B) { run(b, mk(b)) })
	b.Run("uninstrumented", func(b *testing.B) { run(b, mk(b, server.WithoutMetrics())) })
}

// BenchmarkDispatcherThroughput measures concurrent multi-engine search
// dispatch.
func BenchmarkDispatcherThroughput(b *testing.B) {
	engines := make([]*subsystem.Engine, 4)
	for i := range engines {
		sl := caram.MustNew(caram.Config{
			IndexBits: 10, RowBits: 8*(1+32+16) + 8, KeyBits: 32, DataBits: 16,
			Index: hash.NewMultShift(10),
		})
		for k := 0; k < 4096; k++ {
			if err := sl.Insert(match.Record{Key: bitutil.Exact(bitutil.FromUint64(uint64(k)))}); err != nil {
				b.Fatal(err)
			}
		}
		engines[i] = &subsystem.Engine{Name: fmt.Sprintf("e%d", i), Main: sl}
	}
	d := subsystem.NewDispatcher(engines, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range d.Results() {
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port := engines[i%4].Name
		if err := d.Submit(port, uint64(i), bitutil.Exact(bitutil.FromUint64(uint64(i%4096)))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	d.Close()
	<-done
}

// BenchmarkRowMatch prices the word-parallel row-match kernel against
// the slot-serial path it replaced: one full-row search (expand, match
// vector, priority encode, extract) on an 8-slot 64-bit-key row,
// binary and ternary. "kernel" is the production Search; "serial" is
// the retained SearchSerial oracle. The kernel must report zero
// allocations.
func BenchmarkRowMatch(b *testing.B) {
	for _, tern := range []struct {
		name   string
		layout match.Layout
	}{
		{"binary", match.Layout{RowBits: 8*(1+64+32) + 8, KeyBits: 64, DataBits: 32}},
		{"ternary", match.Layout{RowBits: 8*(1+2*64+32) + 8, KeyBits: 64, DataBits: 32, Ternary: true}},
	} {
		proc := match.NewProcessor(tern.layout, 0)
		row := make([]uint64, bitutil.RowWords(tern.layout.RowBits))
		for i := 0; i < tern.layout.Slots(); i++ {
			if err := tern.layout.WriteSlot(row, i, match.Record{
				Key:  bitutil.Exact(bitutil.FromUint64(uint64(0x1000 + i*977))),
				Data: bitutil.FromUint64(uint64(i)),
			}); err != nil {
				b.Fatal(err)
			}
		}
		hit := bitutil.Exact(bitutil.FromUint64(uint64(0x1000 + 5*977)))
		b.Run(tern.name+"/kernel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if res := proc.Search(row, hit); !res.Matched() {
					b.Fatal("match lost")
				}
			}
		})
		b.Run(tern.name+"/serial", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if res := proc.SearchSerial(row, hit); !res.Matched() {
					b.Fatal("match lost")
				}
			}
		})
	}
}

// BenchmarkServerSearchZeroAlloc measures the end-to-end protocol hot
// path on its production API: ExecAppend into a reused reply buffer,
// request lines pre-built (a real connection reads them off the wire;
// building them is the client's cost). Both server variants must
// report 0 allocs/op — the PR 3 headline (BENCH_PR3.json records the
// numbers; before the rewrite this path cost 5 allocs and ~811 ns).
func BenchmarkServerSearchZeroAlloc(b *testing.B) {
	const nKeys = 4096
	mk := func(b *testing.B, opts ...server.Option) *server.Server {
		sub := subsystem.New(0)
		sl := caram.MustNew(caram.Config{
			IndexBits: 10, RowBits: 8*(1+64+32) + 8, KeyBits: 64, DataBits: 32,
			Index: hash.NewMultShift(10),
		})
		for k := 0; k < nKeys; k++ {
			if err := sl.Insert(match.Record{
				Key:  bitutil.Exact(bitutil.FromUint64(uint64(k))),
				Data: bitutil.FromUint64(uint64(k)),
			}); err != nil {
				b.Fatal(err)
			}
		}
		if err := sub.AddEngine(&subsystem.Engine{Name: "db", Main: sl}); err != nil {
			b.Fatal(err)
		}
		return server.New(sub, opts...)
	}
	lines := make([]string, nKeys)
	for k := range lines {
		lines[k] = "SEARCH db " + strconv.FormatUint(uint64(k), 16)
	}
	run := func(b *testing.B, s *server.Server) {
		buf := make([]byte, 0, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = s.ExecAppend(buf[:0], lines[i%nKeys])
			if len(buf) < 3 || buf[0] != 'H' {
				b.Fatal(string(buf))
			}
		}
	}
	b.Run("uninstrumented", func(b *testing.B) { run(b, mk(b, server.WithoutMetrics())) })
	b.Run("instrumented", func(b *testing.B) { run(b, mk(b)) })
}

// BenchmarkMSearchBatched measures the batched fan-out layer: 64-key
// MSEARCH batches spread over 4 engines, through persistent per-engine
// workers that take each engine's lock once per batch (instrumented
// variants additionally pay a single clock pair per engine-batch
// rather than per key). Reported per batch; divide by 64 for per-key
// cost.
func BenchmarkMSearchBatched(b *testing.B) {
	const (
		nEngines  = 4
		nKeys     = 4096
		batchSize = 64
	)
	mk := func(b *testing.B, instrument bool) *subsystem.Concurrent {
		sub := subsystem.New(0)
		for e := 0; e < nEngines; e++ {
			sl := caram.MustNew(caram.Config{
				IndexBits: 10, RowBits: 8*(1+64+32) + 8, KeyBits: 64, DataBits: 32,
				Index: hash.NewMultShift(10),
			})
			for k := 0; k < nKeys; k++ {
				if err := sl.Insert(match.Record{
					Key:  bitutil.Exact(bitutil.FromUint64(uint64(k))),
					Data: bitutil.FromUint64(uint64(k)),
				}); err != nil {
					b.Fatal(err)
				}
			}
			if err := sub.AddEngine(&subsystem.Engine{Name: fmt.Sprintf("e%d", e), Main: sl}); err != nil {
				b.Fatal(err)
			}
		}
		con := subsystem.NewConcurrent(sub)
		if instrument {
			con.Instrument(metrics.NewRegistry(con.Engines()))
		}
		return con
	}
	reqs := make([]subsystem.PortKey, batchSize)
	for i := range reqs {
		reqs[i] = subsystem.PortKey{
			Port: fmt.Sprintf("e%d", i%nEngines),
			Key:  bitutil.Exact(bitutil.FromUint64(uint64(i * 37 % nKeys))),
		}
	}
	run := func(b *testing.B, con *subsystem.Concurrent) {
		defer con.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := con.MSearch(reqs)
			if !out[0].Result.Found {
				b.Fatal("lost record")
			}
		}
	}
	b.Run("uninstrumented", func(b *testing.B) { run(b, mk(b, false)) })
	b.Run("instrumented", func(b *testing.B) { run(b, mk(b, true)) })
}
