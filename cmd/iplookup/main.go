// Command iplookup builds a CA-RAM IP-lookup engine from a synthetic
// BGP-like table (or a file of "a.b.c.d/len" lines) and resolves
// addresses against it, reporting the per-lookup memory-access cost.
//
// Usage:
//
//	iplookup -prefixes 20000 8.8.8.8 62.1.2.3
//	iplookup -table routes.txt -design D 192.168.1.1
//	iplookup -prefixes 20000            # no addresses: print design stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"caram/internal/iproute"
)

func main() {
	var (
		nPrefixes = flag.Int("prefixes", 20000, "synthetic table size (ignored with -table)")
		tableFile = flag.String("table", "", "file of 'a.b.c.d/len [nexthop]' lines")
		design    = flag.String("design", "C", "Table 2 design name (A..F)")
		seed      = flag.Int64("seed", 1, "synthesis seed")
	)
	flag.Parse()

	table, err := loadTable(*tableFile, *nPrefixes, *seed)
	if err != nil {
		fail(err)
	}

	var chosen *iproute.Design
	for i := range iproute.Table2Designs {
		if iproute.Table2Designs[i].Name == strings.ToUpper(*design) {
			chosen = &iproute.Table2Designs[i]
			break
		}
	}
	if chosen == nil {
		fail(fmt.Errorf("unknown design %q (use A..F)", *design))
	}
	// Shrink the design to fit small tables at a sensible load factor.
	d := *chosen
	for d.R > 6 && len(table) < d.Capacity()/4 {
		d.R--
	}

	ev, err := iproute.Evaluate(table, d, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("design %s (R=%d, %d buckets x %d keys): %d prefixes (+%d duplicated), alpha=%.2f\n",
		d.Name, d.R, d.Buckets(), d.Slots(), ev.Prefixes, ev.Duplicates, ev.LoadFactor)
	fmt.Printf("overflowing buckets %.2f%%, spilled records %.2f%%, AMALu %.3f, AMALs %.3f\n",
		ev.OverflowingPct, ev.SpilledPct, ev.AMALu, ev.AMALs)

	for _, arg := range flag.Args() {
		p, err := iproute.ParsePrefix(arg + "/32")
		if err != nil {
			fmt.Printf("%-16s -> bad address: %v\n", arg, err)
			continue
		}
		hop, l, ok := iproute.LPMLookup(ev.Slice, p.Addr)
		if !ok {
			fmt.Printf("%-16s -> no route\n", arg)
			continue
		}
		fmt.Printf("%-16s -> next hop %d via /%d\n", arg, hop, l)
	}
}

func loadTable(file string, n int, seed int64) ([]iproute.Prefix, error) {
	if file == "" {
		return iproute.Generate(iproute.GenConfig{Prefixes: n, Seed: seed}), nil
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []iproute.Prefix
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		p, err := iproute.ParsePrefix(fields[0])
		if err != nil {
			return nil, err
		}
		p.NextHop = uint8(1 + len(out)%255)
		if len(fields) > 1 {
			var hop int
			fmt.Sscanf(fields[1], "%d", &hop)
			p.NextHop = uint8(hop)
		}
		out = append(out, p)
	}
	return out, sc.Err()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "iplookup:", err)
	os.Exit(1)
}
