// Command trigramd builds the trigram-lookup CA-RAM of §4.2 from a
// synthetic language-model database and serves interactive lookups:
// exact queries typed on stdin, one per line, answered with the stored
// score and the number of row accesses the lookup cost.
//
// Usage:
//
//	trigramd -entries 100000              # interactive
//	echo "some tri gram" | trigramd -entries 100000
//	trigramd -entries 100000 -sample 5    # print 5 stored entries, then serve
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"caram/internal/trigram"
)

func main() {
	var (
		entries = flag.Int("entries", 100000, "synthetic database size")
		seed    = flag.Int64("seed", 1, "synthesis seed")
		sample  = flag.Int("sample", 0, "print this many stored entries before serving")
		design  = flag.String("design", "A", "Table 3 design name (A..D)")
	)
	flag.Parse()

	db := trigram.Generate(trigram.GenConfig{Entries: *entries, Seed: *seed})

	var chosen *trigram.Design
	for i := range trigram.Table3Designs {
		if trigram.Table3Designs[i].Name == strings.ToUpper(*design) {
			chosen = &trigram.Table3Designs[i]
			break
		}
	}
	if chosen == nil {
		fmt.Fprintf(os.Stderr, "trigramd: unknown design %q (use A..D)\n", *design)
		os.Exit(1)
	}
	d := *chosen
	// Shrink to keep the paper's load factor at small database sizes.
	for d.R > 4 && float64(len(db)) < 0.5*float64(d.Capacity()) {
		d.R--
	}

	ev, err := trigram.Evaluate(db, d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trigramd:", err)
		os.Exit(1)
	}
	fmt.Printf("design %s (R=%d): %d entries, alpha=%.2f, overflowing %.2f%%, AMAL %.4f\n",
		d.Name, d.R, ev.Entries, ev.LoadFactor, ev.OverflowingPct, ev.AMAL)
	for i := 0; i < *sample && i < len(db); i++ {
		fmt.Printf("stored: %q (score %d)\n", db[i].Text, db[i].Score)
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		score, rows, ok := trigram.Lookup(ev.Slice, q)
		if !ok {
			fmt.Printf("%q: not in the language model (%d row accesses)\n", q, rows)
			continue
		}
		fmt.Printf("%q: score %d (%d row accesses)\n", q, score, rows)
	}
}
