// Command metrics-smoke is the observability end-to-end check behind
// `make metrics-smoke`: it builds cmd/caram-server, starts it with
// both the wire port and the -http port on ephemeral addresses, drives
// a small mixed workload over TCP, then asserts that
//
//   - /metrics serves every caram_* metric family — including the
//     fault-tolerance gauges, since the server runs with -ecc — with
//     the op counts the workload implies,
//   - the HEALTH wire command reports healthy engines with zeroed
//     error-coding counters and HEALTH <engine> SCRUB runs a scrub,
//   - /debug/vars exposes the expvar "caram" map,
//   - METRICS over the wire agrees with the scrape,
//   - the tracing layer works end to end: with a zero slowlog
//     threshold every request is retained, SLOWLOG LEN/GET/RESET see
//     them over the wire, EXPLAIN prints a probe chain, and
//     /debug/traces serves the slowlog JSON with per-request probe
//     events,
//   - typed engines work over the wire: one lpm, pktclass, and trigram
//     engine each is created with CREATE ENGINE and driven through a
//     typed operation, the scrape carries their engine_type-labelled
//     families, /debug/traces retains the typed requests, and DROP
//     ENGINE removes the engine from the exposition, and
//   - SIGINT shuts the server down cleanly (exit code 0).
//
// It then repeats the exercise one tier up: cmd/caram-router is built
// and started in front of two caram-server backends (both tiers with a
// zero slowlog threshold, so every request is traced), a sharded
// workload is driven through the router's wire port, and
//
//   - the router's own /metrics scrape must carry every caram_router_*
//     family with per-backend labels, ops spread across both shards,
//     closed breakers, and a populated burst histogram,
//   - both tiers' scrapes must carry the caram_build_info /
//     caram_uptime_seconds process-identity families,
//   - the fleet commands answer over the router's wire port: METRICS
//     sums backend counters next to the router's own, SLOWLOG GET
//     k-way merges backend slowlogs with node= provenance,
//   - the router's /debug/traces serves stitched traces: each retained
//     router trace carries its queue-wait/RTT spans plus the backend
//     child trace fetched lazily via TRACE GET, and the child's wire
//     id is fetchable directly with TRACE GET <id>/<span>,
//
// and SIGINT must stop the router with exit code 0 too.
//
// It exits non-zero with a diagnostic on the first failed assertion,
// so it works as a CI gate without a test framework.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"caram/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("metrics-smoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	if err := runCluster(); err != nil {
		log.Fatal(fmt.Errorf("cluster: %w", err))
	}
	log.Print("PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "metrics-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "caram-server")
	build := exec.Command("go", "build", "-o", bin, "./cmd/caram-server")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build caram-server: %w", err)
	}

	wireAddr, httpAddr, err := freeAddrs()
	if err != nil {
		return err
	}
	// -slowlog-us 0 admits every request with nonzero latency into the
	// slowlog (any real request qualifies); -log-level error keeps the
	// resulting per-request Warn lines out of the CI output.
	srv := exec.Command(bin, "-addr", wireAddr, "-http", httpAddr, "-engines", "db,aux", "-indexbits", "8",
		"-slowlog-us", "0", "-log-level", "error", "-ecc")
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		return fmt.Errorf("start caram-server: %w", err)
	}
	defer srv.Process.Kill() //nolint:errcheck // belt and braces; the happy path interrupts

	conn, err := dialRetry(wireAddr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	ask := func(req string) (string, error) {
		if _, err := fmt.Fprintln(conn, req); err != nil {
			return "", fmt.Errorf("%s: %w", req, err)
		}
		line, err := rd.ReadString('\n')
		if err != nil {
			return "", fmt.Errorf("%s: %w", req, err)
		}
		return strings.TrimSpace(line), nil
	}

	// A small workload with known counts: 2 inserts, 2 searches (one
	// miss), 1 delete, 2 msearch slots, 1 unknown-engine request.
	for _, step := range []struct{ req, want string }{
		{"INSERT db dead 42", "OK"},
		{"INSERT aux beef 7", "OK"},
		{"SEARCH db dead", "HIT 0:0000000000000042"},
		{"SEARCH db beef", "MISS"},
		{"MSEARCH db dead aux beef", "MRESULTS HIT:0:0000000000000042 HIT:0:0000000000000007"},
		{"DELETE db dead", "OK"},
		{"SEARCH ghost 1", `ERR subsystem: no engine "ghost"`},
		{"METRICS", "METRICS engines=2 ops=7 errors=0 unknown=1"},
		// The fault-tolerance surface (-ecc is on): everything healthy,
		// a scrub over clean arrays repairs nothing, and the scrub run
		// shows up in the counters.
		{"HEALTH", "HEALTH db=healthy aux=healthy"},
		{"HEALTH db", "HEALTH engine=db state=healthy quarantined=0 corrected=0 uncorrectable=0 read_errors=0 scrubs=0 scrub_bits=0 overflow=0/0"},
		{"HEALTH db SCRUB", "OK scrub engine=db rows=0 bits=0 released=0"},
		{"HEALTH db", "HEALTH engine=db state=healthy quarantined=0 corrected=0 uncorrectable=0 read_errors=0 scrubs=1 scrub_bits=0 overflow=0/0"},
	} {
		got, err := ask(step.req)
		if err != nil {
			return err
		}
		if got != step.want {
			return fmt.Errorf("%s: got %q, want %q", step.req, got, step.want)
		}
	}

	body, err := get("http://" + httpAddr + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"# TYPE " + metrics.FamOps + " counter",
		"# TYPE " + metrics.FamOpLatency + " histogram",
		metrics.FamOps + `{engine="db",engine_type="exact",op="insert"} 1`,
		metrics.FamOps + `{engine="db",engine_type="exact",op="search"} 2`,
		metrics.FamOps + `{engine="db",engine_type="exact",op="delete"} 1`,
		metrics.FamOps + `{engine="db",engine_type="exact",op="msearch"} 1`,
		metrics.FamOps + `{engine="aux",engine_type="exact",op="msearch"} 1`,
		metrics.FamOpLatency + `_count{engine="db",engine_type="exact",op="search"} 2`,
		metrics.FamRecords + `{engine="db",engine_type="exact"} 0`,
		metrics.FamRecords + `{engine="aux",engine_type="exact"} 1`,
		metrics.FamLoadFactor + `{engine="db",engine_type="exact"} 0`,
		metrics.FamAMAL + `{engine="db",engine_type="exact"}`,
		metrics.FamLookups + `{engine="db",engine_type="exact"} 3`,
		metrics.FamHits + `{engine="db",engine_type="exact"} 2`,
		metrics.FamMisses + `{engine="db",engine_type="exact"} 1`,
		metrics.FamRowsAccessed + `{engine="db",engine_type="exact"}`,
		metrics.FamOverflow + `{engine="db",engine_type="exact"} 0`,
		metrics.FamSpilled + `{engine="db",engine_type="exact"} 0`,
		metrics.FamHealth + `{engine="db",engine_type="exact"} 0`,
		metrics.FamQuarantined + `{engine="db",engine_type="exact"} 0`,
		metrics.FamEccCorrected + `{engine="db",engine_type="exact"} 0`,
		metrics.FamEccUncorrect + `{engine="db",engine_type="exact"} 0`,
		metrics.FamRowReadErrors + `{engine="db",engine_type="exact"} 0`,
		metrics.FamScrubRepaired + `{engine="db",engine_type="exact"} 0`,
		metrics.FamSearchRetries + `{engine="db",engine_type="exact"} 0`,
		metrics.FamLockFallbacks + `{engine="db",engine_type="exact"} 0`,
		metrics.FamUnknown + " 1",
		// Process identity rides along on every scrape.
		"# TYPE " + metrics.FamBuildInfo + " gauge",
		metrics.FamBuildInfo + `{version=`,
		"# TYPE " + metrics.FamUptime + " gauge",
		metrics.FamUptime + " ",
	} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	// Tracing over the wire. The zero threshold admitted all 12 requests
	// above; LEN reads the ring before its own trace is admitted (End
	// runs after the reply is built), so the count is exact.
	if got, err := ask("SLOWLOG LEN"); err != nil {
		return err
	} else if got != "SLOWLOG len=12" {
		return fmt.Errorf("SLOWLOG LEN: got %q, want %q", got, "SLOWLOG len=12")
	}
	explain, err := ask("EXPLAIN SEARCH aux beef")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"EXPLAIN engine=aux key=beef ",
		" rows=1 ",
		" matches=1 ",
		" expected=1.000 ",
		" result=HIT ",
		":d0:",
		":hit]",
		" ovfl=none",
	} {
		if !strings.Contains(explain, want) {
			return fmt.Errorf("EXPLAIN missing %q in %q", want, explain)
		}
	}
	// The newest slowlog entry is the EXPLAIN request itself (admitted
	// when it ended, after the lookup it explains).
	if got, err := ask("SLOWLOG GET 1"); err != nil {
		return err
	} else if !strings.HasPrefix(got, "SLOWLOG n=1 id=") || !strings.Contains(got, " cmd=EXPLAIN ") {
		return fmt.Errorf("SLOWLOG GET 1: got %q, want one EXPLAIN entry", got)
	}

	// /debug/traces: the structured JSON view of the same rings.
	traces, err := get("http://" + httpAddr + "/debug/traces")
	if err != nil {
		return err
	}
	var tv struct {
		Policy struct {
			SlowlogUs int64 `json:"slowlog_us"`
			Ring      int   `json:"ring"`
		} `json:"policy"`
		Seen    uint64 `json:"seen"`
		Slowlog struct {
			Len     int `json:"len"`
			Entries []struct {
				ID     uint64 `json:"id"`
				Cmd    string `json:"cmd"`
				Result string `json:"result"`
				Rows   int32  `json:"rows"`
				Probes []struct {
					Bucket  uint32 `json:"bucket"`
					Matches int32  `json:"matches"`
					Hit     bool   `json:"hit"`
				} `json:"probes"`
				Spans []struct {
					Kind string `json:"kind"`
				} `json:"spans"`
			} `json:"entries"`
		} `json:"slowlog"`
		Sampled struct {
			Len int `json:"len"`
		} `json:"sampled"`
	}
	if err := json.Unmarshal([]byte(traces), &tv); err != nil {
		return fmt.Errorf("/debug/traces not JSON: %w", err)
	}
	if tv.Policy.SlowlogUs != 0 || tv.Policy.Ring <= 0 {
		return fmt.Errorf("/debug/traces policy: got slowlog_us=%d ring=%d", tv.Policy.SlowlogUs, tv.Policy.Ring)
	}
	if tv.Seen < 10 || tv.Slowlog.Len < 9 {
		return fmt.Errorf("/debug/traces retention: seen=%d slowlog.len=%d", tv.Seen, tv.Slowlog.Len)
	}
	sawProbes := false
	for _, e := range tv.Slowlog.Entries {
		if e.ID == 0 || e.Cmd == "" {
			return fmt.Errorf("/debug/traces entry missing id/cmd: %+v", e)
		}
		if e.Cmd == "SEARCH" && e.Result == "HIT" && len(e.Probes) > 0 && e.Rows > 0 {
			sawProbes = true
		}
	}
	if !sawProbes {
		return fmt.Errorf("/debug/traces: no SEARCH HIT entry with a probe chain\n%s", traces)
	}

	// RESET clears the ring; the RESET request itself is admitted right
	// after its reply is built, so the next LEN sees exactly one entry.
	if got, err := ask("SLOWLOG RESET"); err != nil {
		return err
	} else if got != "OK" {
		return fmt.Errorf("SLOWLOG RESET: got %q, want OK", got)
	}
	if got, err := ask("SLOWLOG LEN"); err != nil {
		return err
	} else if got != "SLOWLOG len=1" {
		return fmt.Errorf("SLOWLOG LEN after RESET: got %q, want %q", got, "SLOWLOG len=1")
	}

	// Typed engines: create one of each type over the wire and drive
	// one typed operation each — the same process now serves all four
	// engine shapes.
	for _, step := range []struct{ req, want string }{
		{"CREATE ENGINE ip TYPE lpm INDEXBITS 8 SLOTS 8", "OK"},
		{"CREATE ENGINE acl TYPE pktclass INDEXBITS 8 SLOTS 8", "OK"},
		{"CREATE ENGINE tri TYPE trigram INDEXBITS 8", "OK"},
		{"MINSERT ip a000000 ffffff 801", "OK"},
		{"MINSERT ip a010000 ffff 1002", "OK"},
		{"SEARCH ip a010101", "HIT 0:0000000000001002"}, // longest prefix, not first match
		{"MINSERT acl a01010000:1bb000006 ffff:ffffff0000ffff00 0:1010064", "OK"},
		{"SEARCH acl a010107c0:a8000101bb303906", "HIT 0:0000000001010064"},
		{"TINSERT tri 2a the quick fox", "OK"},
		{"TSEARCH tri the quick fox", "HIT 0:000000000000002a"},
		{"TSEARCH tri missing text", "MISS"},
	} {
		got, err := ask(step.req)
		if err != nil {
			return err
		}
		if got != step.want {
			return fmt.Errorf("%s: got %q, want %q", step.req, got, step.want)
		}
	}

	// The scrape now carries engine_type-labelled families for every
	// typed engine beside the exact ones.
	body, err = get("http://" + httpAddr + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		metrics.FamOps + `{engine="ip",engine_type="lpm",op="insert"} 2`,
		metrics.FamOps + `{engine="ip",engine_type="lpm",op="search"} 1`,
		metrics.FamOps + `{engine="acl",engine_type="pktclass",op="insert"} 1`,
		metrics.FamOps + `{engine="acl",engine_type="pktclass",op="search"} 1`,
		metrics.FamOps + `{engine="tri",engine_type="trigram",op="insert"} 1`,
		metrics.FamOps + `{engine="tri",engine_type="trigram",op="search"} 2`,
		metrics.FamOpLatency + `_count{engine="tri",engine_type="trigram",op="search"} 2`,
		metrics.FamRecords + `{engine="tri",engine_type="trigram"} 1`,
		metrics.FamHits + `{engine="ip",engine_type="lpm"} 1`,
		metrics.FamMisses + `{engine="tri",engine_type="trigram"} 1`,
		metrics.FamHealth + `{engine="acl",engine_type="pktclass"} 0`,
	} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("/metrics missing %q after typed workload\n%s", want, body)
		}
	}

	// /debug/traces retained the typed requests (the ring was reset
	// just before the typed workload, so they dominate it).
	traces, err = get("http://" + httpAddr + "/debug/traces")
	if err != nil {
		return err
	}
	for _, want := range []string{`"cmd": "TSEARCH"`, `"cmd": "MINSERT"`, `"engine": "ip"`} {
		if !strings.Contains(traces, want) {
			return fmt.Errorf("/debug/traces missing %q after typed workload\n%s", want, traces)
		}
	}

	// DROP unregisters the engine from the exposition entirely.
	if got, err := ask("DROP ENGINE acl"); err != nil {
		return err
	} else if got != "OK" {
		return fmt.Errorf("DROP ENGINE acl: got %q, want OK", got)
	}
	body, err = get("http://" + httpAddr + "/metrics")
	if err != nil {
		return err
	}
	if strings.Contains(body, `engine="acl"`) {
		return fmt.Errorf(`/metrics still exposes engine="acl" after DROP`)
	}

	vars, err := get("http://" + httpAddr + "/debug/vars")
	if err != nil {
		return err
	}
	var parsed struct {
		Caram struct {
			Engines map[string]json.RawMessage `json:"engines"`
		} `json:"caram"`
	}
	if err := json.Unmarshal([]byte(vars), &parsed); err != nil {
		return fmt.Errorf("/debug/vars not JSON: %w", err)
	}
	for _, eng := range []string{"db", "aux"} {
		if _, ok := parsed.Caram.Engines[eng]; !ok {
			return fmt.Errorf("/debug/vars caram map missing engine %q", eng)
		}
	}

	// Graceful shutdown: SIGINT, then the process must exit 0.
	if err := srv.Process.Signal(os.Interrupt); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("server exited non-zero after SIGINT: %w", err)
		}
	case <-time.After(10 * time.Second):
		srv.Process.Kill() //nolint:errcheck
		return fmt.Errorf("server did not exit within 10s of SIGINT")
	}
	return nil
}

// runCluster is the router-tier smoke: caram-router in front of two
// caram-server backends, a sharded workload, and the router's own
// Prometheus exposition.
func runCluster() error {
	dir, err := os.MkdirTemp("", "metrics-smoke-cluster")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	srvBin := filepath.Join(dir, "caram-server")
	rtBin := filepath.Join(dir, "caram-router")
	for _, b := range []struct{ bin, pkg string }{{srvBin, "./cmd/caram-server"}, {rtBin, "./cmd/caram-router"}} {
		build := exec.Command("go", "build", "-o", b.bin, b.pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("build %s: %w", b.pkg, err)
		}
	}

	// Two backends, then the router in front of them. The health
	// watcher stays off so the op counters below are exactly the
	// workload's.
	var bkAddrs [2]string
	var bkProcs [2]*exec.Cmd
	for i := range bkAddrs {
		addr, _, err := freeAddrs()
		if err != nil {
			return err
		}
		bk := exec.Command(srvBin, "-addr", addr, "-engines", "db", "-indexbits", "8",
			"-slowlog-us", "0", "-log-level", "error")
		bk.Stderr = os.Stderr
		if err := bk.Start(); err != nil {
			return fmt.Errorf("start backend %d: %w", i, err)
		}
		defer bk.Process.Kill() //nolint:errcheck
		bkAddrs[i], bkProcs[i] = addr, bk
	}
	for _, addr := range bkAddrs {
		c, err := dialRetry(addr, 5*time.Second)
		if err != nil {
			return err
		}
		c.Close()
	}
	wireAddr, httpAddr, err := freeAddrs()
	if err != nil {
		return err
	}
	rt := exec.Command(rtBin, "-addr", wireAddr, "-http", httpAddr,
		"-backends", bkAddrs[0]+","+bkAddrs[1], "-health-interval", "0",
		"-slowlog-us", "0", "-log-level", "error")
	rt.Stderr = os.Stderr
	if err := rt.Start(); err != nil {
		return fmt.Errorf("start caram-router: %w", err)
	}
	defer rt.Process.Kill() //nolint:errcheck

	conn, err := dialRetry(wireAddr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	ask := func(req string) (string, error) {
		if _, err := fmt.Fprintln(conn, req); err != nil {
			return "", fmt.Errorf("%s: %w", req, err)
		}
		line, err := rd.ReadString('\n')
		if err != nil {
			return "", fmt.Errorf("%s: %w", req, err)
		}
		return strings.TrimSpace(line), nil
	}

	// 64 keys shard across both backends; every reply is
	// self-validating, and the router-local METRICS line counts the
	// 128 forwarded ops exactly.
	const n = 64
	for i := 1; i <= n; i++ {
		if got, err := ask(fmt.Sprintf("INSERT db %x %x", i, i)); err != nil {
			return err
		} else if got != "OK" {
			return fmt.Errorf("INSERT %x through router: got %q", i, got)
		}
	}
	for i := 1; i <= n; i++ {
		want := fmt.Sprintf("HIT 0:%016x", i)
		if got, err := ask(fmt.Sprintf("SEARCH db %x", i)); err != nil {
			return err
		} else if got != want {
			return fmt.Errorf("SEARCH %x through router: got %q, want %q", i, got, want)
		}
	}
	// The traced router answers METRICS fleet-wide: backend counters
	// summed, the router's own forward totals alongside.
	if got, err := ask("METRICS"); err != nil {
		return err
	} else if !strings.HasPrefix(got, fmt.Sprintf("METRICS backends=2 ops=%d errors=0 unknown=0 router_ops=", 2*n)) ||
		!strings.Contains(got, " router_errors=0") {
		return fmt.Errorf("router fleet METRICS: got %q", got)
	}
	if got, err := ask("METRICS db"); err != nil {
		return err
	} else if !strings.HasPrefix(got, "METRICS engine=db ") ||
		!strings.Contains(got, fmt.Sprintf(" insert=%d ", n)) ||
		!strings.Contains(got, fmt.Sprintf(" search=%d ", n)) {
		return fmt.Errorf("router fleet METRICS db: got %q", got)
	}
	if got, err := ask("METRICS db LATENCY search"); err != nil {
		return err
	} else if !strings.HasPrefix(got, fmt.Sprintf("METRICS engine=db op=search n=%d ", n)) ||
		!strings.Contains(got, " p99_us=") {
		return fmt.Errorf("router fleet LATENCY: got %q", got)
	}

	// The fleet slowlog merges both backends' rings with the router's
	// own, every entry stamped with where it was measured.
	if got, err := ask("SLOWLOG GET 5"); err != nil {
		return err
	} else if !strings.HasPrefix(got, "SLOWLOG n=5 ") || !strings.Contains(got, " node=") {
		return fmt.Errorf("router fleet SLOWLOG: got %q", got)
	}

	// /debug/traces on the router serves stitched traces: router spans
	// plus backend child traces fetched over the wire with TRACE GET.
	stitched, err := get("http://" + httpAddr + "/debug/traces")
	if err != nil {
		return err
	}
	var sv struct {
		Slowlog []struct {
			Router struct {
				Cmd  string `json:"cmd"`
				TID  string `json:"tid"`
				Hops []struct {
					Kind string `json:"kind"`
				} `json:"hops"`
			} `json:"router"`
			Children []struct {
				Backend string          `json:"backend"`
				Span    uint32          `json:"span"`
				Trace   json.RawMessage `json:"trace"`
				Error   string          `json:"error"`
			} `json:"children"`
		} `json:"slowlog"`
	}
	if err := json.Unmarshal([]byte(stitched), &sv); err != nil {
		return fmt.Errorf("router /debug/traces not JSON: %w", err)
	}
	childTID := ""
	for _, e := range sv.Slowlog {
		if e.Router.Cmd != "SEARCH" || len(e.Children) == 0 {
			continue
		}
		hops := map[string]bool{}
		for _, h := range e.Router.Hops {
			hops[h.Kind] = true
		}
		c := e.Children[0]
		if hops["queue_wait"] && hops["backend_rtt"] && c.Error == "" &&
			strings.Contains(string(c.Trace), `"probes"`) {
			childTID = fmt.Sprintf("%s/%d", e.Router.TID, c.Span)
			break
		}
	}
	if childTID == "" {
		return fmt.Errorf("router /debug/traces: no stitched SEARCH with router spans and a backend child\n%s", stitched)
	}
	// The same child is fetchable directly over the wire.
	if got, err := ask("TRACE GET " + childTID); err != nil {
		return err
	} else if !strings.HasPrefix(got, "TRACE {") {
		return fmt.Errorf("TRACE GET %s through router: got %q", childTID, got)
	}

	// The router's scrape: every caram_router_* family, per-backend
	// labels, traffic on both shards, breakers closed, bursts seen.
	body, err := get("http://" + httpAddr + "/metrics")
	if err != nil {
		return err
	}
	for _, fam := range []string{
		metrics.FamRouterOps, metrics.FamRouterErrors, metrics.FamRouterRetries,
		metrics.FamRouterBreakerTrips, metrics.FamRouterBreakerOpen,
		metrics.FamRouterInflight, metrics.FamRouterBurst,
	} {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			return fmt.Errorf("router /metrics missing family %s\n%s", fam, body)
		}
	}
	for _, want := range []string{
		"# TYPE " + metrics.FamBuildInfo + " gauge",
		metrics.FamBuildInfo + `{version=`,
		"# TYPE " + metrics.FamUptime + " gauge",
	} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("router /metrics missing %q\n%s", want, body)
		}
	}
	for _, addr := range bkAddrs {
		ops, ok := scrapeValue(body, fmt.Sprintf("%s{backend=%q} ", metrics.FamRouterOps, addr))
		if !ok || ops <= 0 {
			return fmt.Errorf("router /metrics: backend %s absorbed no ops (sharding broken?)\n%s", addr, body)
		}
		if !strings.Contains(body, fmt.Sprintf("%s{backend=%q} 0", metrics.FamRouterBreakerOpen, addr)) {
			return fmt.Errorf("router /metrics: breaker not closed for %s\n%s", addr, body)
		}
		if cnt, ok := scrapeValue(body, fmt.Sprintf("%s_count{backend=%q} ", metrics.FamRouterBurst, addr)); !ok || cnt <= 0 {
			return fmt.Errorf("router /metrics: no bursts recorded for %s\n%s", addr, body)
		}
	}

	// Graceful shutdown, router first, then the backends.
	if err := rt.Process.Signal(os.Interrupt); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- rt.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("router exited non-zero after SIGINT: %w", err)
		}
	case <-time.After(10 * time.Second):
		rt.Process.Kill() //nolint:errcheck
		return fmt.Errorf("router did not exit within 10s of SIGINT")
	}
	for i, bk := range bkProcs {
		if err := bk.Process.Signal(os.Interrupt); err != nil {
			return err
		}
		if err := bk.Wait(); err != nil {
			return fmt.Errorf("backend %d exited non-zero after SIGINT: %w", i, err)
		}
	}
	return nil
}

// scrapeValue finds the sample whose line starts with prefix and
// returns its value.
func scrapeValue(body, prefix string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// freeAddrs reserves two distinct loopback ports by listening and
// closing; the tiny reuse race is acceptable for a smoke check.
func freeAddrs() (wire, http string, err error) {
	addrs := make([]string, 2)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", "", err
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs[0], addrs[1], nil
}

// dialRetry polls the wire port until the freshly-exec'd server
// accepts.
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}
