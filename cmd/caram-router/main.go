// Command caram-router puts N caram-server backends behind one
// endpoint speaking the same line protocol (internal/server) on both
// sides — the cluster tier of the CA-RAM lookup service. Exact-engine
// keys shard onto backends by consistent hashing over <engine, key>
// (a deterministic virtual-node ring, internal/cluster.Ring); typed
// engines (lpm, pktclass, trigram) and anything listed in -pin live
// wholly on their home backend, because prefix/priority/ranking
// semantics are only correct over the whole rule set. MSEARCH fans
// out scatter/gather: the pair list splits by ring owner, one
// pipelined MSEARCH goes to each involved backend concurrently, and
// the slots reassemble in the caller's original order.
//
// Each backend is reached over a pipelined connection pool (-conns
// persistent connections): concurrently arriving requests coalesce
// into one buffered write burst with a single flush — the network
// form of the server's own batch pipeline — and replies match waiting
// calls in FIFO pipeline order. The forward path allocates nothing in
// steady state.
//
// Failures degrade loudly, never wrongly: a dead backend trips its
// circuit breaker (-breaker-threshold consecutive failures, open for
// -breaker-backoff), requests shed fast with "ERR unavailable"
// (MSEARCH slots: "ERR:unavailable"), idempotent reads that died
// in-flight retry up to -retries times on a fresh connection, and the
// health watcher probes HEALTH every -health-interval to detect death
// and recovery ahead of client traffic.
//
// With -http the router exposes its per-backend observability on
// /metrics (ops, errors, retries, breaker state, pipeline depth, and
// the burst-size histogram that shows coalescing at work) plus the
// standard pprof endpoints.
//
// The router traces every proxied request (-trace-sample, -slowlog-us,
// -trace-ring mirror the server flags): eligible requests tag their
// forwarded commands with a *TID annotation so backend traces become
// children, /debug/traces serves retained traces stitched with their
// backend child spans (router queue wait and RTT next to backend lock
// wait and probe chains), and the SLOWLOG / METRICS / TRACE wire
// commands answer fleet-wide — slowlogs scatter/gather-merge by
// latency with node= provenance, counters sum, latency histograms
// merge bucket-wise.
//
//	caram-server -addr 127.0.0.1:7071 &
//	caram-server -addr 127.0.0.1:7072 &
//	caram-router -addr :7070 -backends 127.0.0.1:7071,127.0.0.1:7072 -http :9091 &
//	printf 'INSERT db dead 42\nSEARCH db dead\nMSEARCH db dead db beef\n' | nc localhost 7070
//
// SIGINT/SIGTERM shut down gracefully: listeners close, in-flight
// requests settle, pools drain, and the process exits 0.
package main

import (
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"caram/internal/cluster"
	"caram/internal/metrics"
	"caram/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		backends = flag.String("backends", "", "comma-separated backend addresses (host:port), required; also their ring labels")
		replicas = flag.Int("replicas", cluster.DefaultReplicas, "virtual nodes per backend on the hash ring")
		pin      = flag.String("pin", "", "comma-separated engine names pinned whole to their home backend (typed engines created through the router pin automatically)")
		conns    = flag.Int("conns", 4, "pipelined connections per backend")
		httpAddr = flag.String("http", "", "optional HTTP listen address for /metrics and /debug/pprof")
		logLevel = flag.String("log-level", "info", "log floor: debug, info, warn, error")

		retries      = flag.Int("retries", 2, "resubmissions for idempotent reads whose connection died in-flight")
		retryBackoff = flag.Duration("retry-backoff", 2*time.Millisecond, "first retry delay (doubles per attempt)")

		breakerThreshold = flag.Int("breaker-threshold", 3, "consecutive transport failures that open a backend's circuit breaker")
		breakerBackoff   = flag.Duration("breaker-backoff", 250*time.Millisecond, "how long an open breaker sheds before the next half-open attempt")
		dialTimeout      = flag.Duration("dial-timeout", 2*time.Second, "per-connection dial bound")
		healthInterval   = flag.Duration("health-interval", time.Second, "HEALTH probe period per backend (0 = watcher off)")
		healthTimeout    = flag.Duration("health-timeout", time.Second, "per-probe deadline")

		traceSample = flag.Int("trace-sample", 0, "trace 1 in N proxied requests (0 = off)")
		slowlogUs   = flag.Int64("slowlog-us", 10_000, "router slowlog threshold in microseconds (-1 = off)")
		traceRing   = flag.Int("trace-ring", trace.DefaultRing, "retained traces per policy ring")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("bad -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	bks, err := cluster.ParseBackends(*backends)
	if err != nil {
		logger.Error("bad -backends", "err", err)
		os.Exit(2)
	}
	labels := make([]string, len(bks))
	for i, b := range bks {
		labels[i] = b.Label
	}
	var pins []string
	if *pin != "" {
		for _, name := range strings.Split(*pin, ",") {
			if name = strings.TrimSpace(name); name != "" {
				pins = append(pins, name)
			}
		}
	}

	rm := metrics.NewRouterMetrics(labels)
	// The collector always exists (TRACE GET and /debug/traces work even
	// with both admission policies off); policies come from the flags.
	slowlog := time.Duration(-1)
	if *slowlogUs >= 0 {
		slowlog = time.Duration(*slowlogUs) * time.Microsecond
	}
	col := trace.NewCollector(trace.Config{
		SampleN: *traceSample,
		Slowlog: slowlog,
		Ring:    *traceRing,
	})
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:         bks,
		Replicas:         *replicas,
		Pin:              pins,
		Conns:            *conns,
		BreakerThreshold: *breakerThreshold,
		BreakerBackoff:   *breakerBackoff,
		DialTimeout:      *dialTimeout,
		Retries:          *retries,
		RetryBackoff:     *retryBackoff,
		HealthInterval:   *healthInterval,
		HealthTimeout:    *healthTimeout,
		Metrics:          rm,
		Logger:           logger,
		Tracing:          col,
	})
	if err != nil {
		logger.Error("router config", "err", err)
		os.Exit(2)
	}

	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			logger.Error("http listen", "addr", *httpAddr, "err", err)
			os.Exit(1)
		}
		logger.Info("http endpoints up",
			"metrics", "http://"+hl.Addr().String()+"/metrics",
			"traces", "http://"+hl.Addr().String()+"/debug/traces")
		go func() {
			h := metrics.RouterHandler(rm, metrics.WithHandler("/debug/traces", rt.TraceHandler()))
			if err := http.Serve(hl, h); err != nil {
				logger.Error("http serve", "err", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen", "addr", *addr, "err", err)
		os.Exit(1)
	}
	logger.Info("routing",
		"addr", l.Addr().String(),
		"backends", strings.Join(labels, ","),
		"replicas", *replicas,
		"conns", *conns,
		"pinned", strings.Join(pins, ","),
		"health_interval", healthInterval.String())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Info("shutting down", "signal", s.String())
		if err := rt.Close(); err != nil {
			logger.Error("close", "err", err)
		}
	}()

	if err := rt.Serve(l); err != nil && !errors.Is(err, cluster.ErrRouterClosed) {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	logger.Info("bye")
}
