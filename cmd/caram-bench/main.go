// Command caram-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	caram-bench -list
//	caram-bench -experiment table2
//	caram-bench -experiment all -full
//
// By default datasets are scaled down by a power of two with every
// load factor preserved (the statistics Tables 2 and 3 measure are
// functions of the load factor, so the shape is unchanged); -full runs
// the paper's exact dataset sizes (186,760 prefixes and 5,385,231
// trigram entries; takes a few minutes).
package main

import (
	"flag"
	"fmt"
	"os"

	"caram/internal/exp"
)

func main() {
	var (
		name = flag.String("experiment", "all", "experiment name, or 'all'")
		full = flag.Bool("full", false, "use the paper's full dataset sizes")
		seed = flag.Int64("seed", 1, "dataset synthesis seed")
		list = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Experiments {
			fmt.Printf("%-10s %s\n", e.Name, e.Desc)
		}
		return
	}

	sc := exp.DefaultScale()
	if *full {
		sc = exp.FullScale()
	}
	sc.Seed = *seed

	var out string
	var err error
	if *name == "all" {
		out, err = exp.RunAll(sc)
	} else {
		out, err = exp.Run(*name, sc)
	}
	fmt.Print(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caram-bench:", err)
		os.Exit(1)
	}
}
