// Command caram-server exposes a CA-RAM subsystem over TCP with the
// line protocol of internal/server — the accelerator as a lookup
// service. It starts with one empty general-purpose engine named "db"
// (64-bit keys, 32-bit data); clients populate and query it.
//
//	caram-server -addr :7070 &
//	printf 'INSERT db dead 42\nSEARCH db dead\n' | nc localhost 7070
package main

import (
	"flag"
	"log"
	"net"

	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/server"
	"caram/internal/subsystem"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7070", "listen address")
		rbits = flag.Int("indexbits", 12, "index bits (2^n buckets)")
		slots = flag.Int("slots", 8, "keys per bucket")
	)
	flag.Parse()

	sub := subsystem.New(0)
	sl, err := caram.New(caram.Config{
		IndexBits: *rbits,
		RowBits:   *slots*(1+64+32) + 16,
		KeyBits:   64,
		DataBits:  32,
		AuxBits:   16,
		Index:     hash.NewMultShift(*rbits),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sub.AddEngine(&subsystem.Engine{Name: "db", Main: sl}); err != nil {
		log.Fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("caram-server: engine 'db' (%d buckets x %d slots) on %s",
		sl.Config().Rows(), sl.Config().Slots(), l.Addr())
	log.Fatal(server.New(sub).Serve(l))
}
