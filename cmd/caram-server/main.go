// Command caram-server exposes a CA-RAM subsystem over TCP with the
// line protocol of internal/server — the accelerator as a lookup
// service. It starts one empty general-purpose engine per name in
// -engines (64-bit keys, 32-bit data); clients populate and query
// them. Requests to distinct engines execute in parallel (the
// per-engine locking model of internal/subsystem's Concurrent layer),
// so pointing hot traffic at several engines scales with cores.
//
// With -http the server also exposes its observability surface:
// Prometheus-style metrics on /metrics, expvar on /debug/vars, and
// pprof under /debug/pprof/.
//
//	caram-server -addr :7070 -http :9090 -engines db,ip,tri &
//	printf 'INSERT db dead 42\nMSEARCH db dead ip dead\n' | nc localhost 7070
//	curl -s localhost:9090/metrics | grep caram_
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, in-flight
// handlers drain, and the process exits 0.
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/metrics"
	"caram/internal/server"
	"caram/internal/subsystem"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		httpAddr = flag.String("http", "", "optional HTTP listen address for /metrics, /debug/vars, /debug/pprof")
		rbits    = flag.Int("indexbits", 12, "index bits per engine (2^n buckets)")
		slots    = flag.Int("slots", 8, "keys per bucket")
		engines  = flag.String("engines", "db", "comma-separated engine names; requests to distinct engines run in parallel")
	)
	flag.Parse()

	names := strings.Split(*engines, ",")
	sub := subsystem.New(0)
	var rows, perRow int
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			log.Fatal("caram-server: empty engine name in -engines")
		}
		sl, err := caram.New(caram.Config{
			IndexBits: *rbits,
			RowBits:   *slots*(1+64+32) + 16,
			KeyBits:   64,
			DataBits:  32,
			AuxBits:   16,
			Index:     hash.NewMultShift(*rbits),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sub.AddEngine(&subsystem.Engine{Name: name, Main: sl}); err != nil {
			log.Fatal(err)
		}
		rows, perRow = sl.Config().Rows(), sl.Config().Slots()
	}

	srv := server.New(sub)

	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("caram-server: metrics on http://%s/metrics", hl.Addr())
		go func() {
			if err := http.Serve(hl, metrics.Handler(srv.Metrics())); err != nil {
				log.Printf("caram-server: http: %v", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("caram-server: %d engine(s) %v (%d buckets x %d slots each) on %s",
		len(names), names, rows, perRow, l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("caram-server: %v: shutting down", s)
		if err := srv.Close(); err != nil {
			log.Printf("caram-server: close: %v", err)
		}
	}()

	if err := srv.Serve(l); err != nil && !errors.Is(err, server.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("caram-server: bye")
}
