// Command caram-server exposes a CA-RAM subsystem over TCP with the
// line protocol of internal/server — the accelerator as a lookup
// service. It starts one empty general-purpose engine per name in
// -engines (64-bit keys, 32-bit data); clients populate and query
// them. Requests to distinct engines execute in parallel (the
// per-engine locking model of internal/subsystem's Concurrent layer),
// so pointing hot traffic at several engines scales with cores.
//
//	caram-server -addr :7070 -engines db,ip,tri &
//	printf 'INSERT db dead 42\nMSEARCH db dead ip dead\n' | nc localhost 7070
package main

import (
	"flag"
	"log"
	"net"
	"strings"

	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/server"
	"caram/internal/subsystem"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7070", "listen address")
		rbits   = flag.Int("indexbits", 12, "index bits per engine (2^n buckets)")
		slots   = flag.Int("slots", 8, "keys per bucket")
		engines = flag.String("engines", "db", "comma-separated engine names; requests to distinct engines run in parallel")
	)
	flag.Parse()

	names := strings.Split(*engines, ",")
	sub := subsystem.New(0)
	var rows, perRow int
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			log.Fatal("caram-server: empty engine name in -engines")
		}
		sl, err := caram.New(caram.Config{
			IndexBits: *rbits,
			RowBits:   *slots*(1+64+32) + 16,
			KeyBits:   64,
			DataBits:  32,
			AuxBits:   16,
			Index:     hash.NewMultShift(*rbits),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sub.AddEngine(&subsystem.Engine{Name: name, Main: sl}); err != nil {
			log.Fatal(err)
		}
		rows, perRow = sl.Config().Rows(), sl.Config().Slots()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("caram-server: %d engine(s) %v (%d buckets x %d slots each) on %s",
		len(names), names, rows, perRow, l.Addr())
	log.Fatal(server.New(sub).Serve(l))
}
