// Command caram-server exposes a CA-RAM subsystem over TCP with the
// line protocol of internal/server — the accelerator as a lookup
// service. It starts one empty engine per element of -engines, where
// each element is name or name:type — exact (the default: 64-bit
// keys, 32-bit data), lpm (32-bit ternary longest-prefix match),
// pktclass (104-bit ternary 5-tuple classification), or trigram
// (128-bit text keys). Clients populate and query them, and can add
// or remove engines at runtime with CREATE ENGINE / DROP ENGINE.
// Requests to distinct engines execute in parallel (the per-engine
// locking model of internal/subsystem's Concurrent layer), so
// pointing hot traffic at several engines scales with cores.
//
// With -http the server also exposes its observability surface:
// Prometheus-style metrics on /metrics, expvar on /debug/vars, pprof
// under /debug/pprof/, and the tracing layer's retained requests as
// JSON on /debug/traces.
//
// Tracing is always on (the collector itself is a handful of atomics;
// per-request cost is one pooled trace). -trace-sample admits every Nth
// request into the sampled ring; -slowlog-us sets the slowlog latency
// threshold in microseconds — every request slower than that is
// retained with its full probe trace and logged at Warn. The wire
// commands SLOWLOG and EXPLAIN read the same state.
//
// Fault tolerance is opt-in. -ecc arms per-row error coding on every
// engine: each fetched row is verified against a SECDED-style check
// word, single-bit errors are corrected in place, uncorrectable rows
// are quarantined (lookups answer the explicit "MISS!" instead of
// silently missing) and restored by HEALTH <engine> SCRUB over the
// wire. The HEALTH command and the caram_engine_health /metrics gauge
// expose each engine's healthy/degraded/failed state. -fault-seed
// installs a deterministic soft-error injector per engine (bit flips,
// transient read errors, latency spikes at the -fault-* rates) — the
// chaos-testing mode; combine it with -ecc to watch the error coding
// absorb the faults.
//
// Durability is opt-in with -data <dir>: every acknowledged mutation
// is journaled to a segmented write-ahead log under the -wal-sync
// policy (always fsyncs before each ack; interval=<d> group-commits on
// a timer; never leaves fsync to segment boundaries), periodic
// snapshots (-snapshot-every) serialize each engine's shadow image and
// truncate sealed segments, and boot recovers the latest snapshot plus
// the WAL tail — truncating, never replaying, a torn final record.
// The WAL STATUS wire command and the caram_wal_* /metrics families
// expose the commit horizon.
//
// Overload protection is opt-in too: -max-conns sheds connections
// beyond the cap with one "ERR BUSY" line; -read-timeout and
// -idle-timeout arm the per-connection read deadlines (slow-loris
// defense) described in internal/server.
//
// Logging goes to stderr as structured log/slog lines; -log-level
// picks the floor (debug adds connection lifecycle events).
//
//	caram-server -addr :7070 -http :9090 -engines db,ip:lpm,tri:trigram -slowlog-us 500 &
//	printf 'INSERT db dead 42\nEXPLAIN SEARCH db dead\nSLOWLOG LEN\n' | nc localhost 7070
//	curl -s localhost:9090/debug/traces | head
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, in-flight
// handlers drain, and the process exits 0.
package main

import (
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"caram/internal/caram"
	"caram/internal/fault"
	"caram/internal/hash"
	"caram/internal/metrics"
	"caram/internal/server"
	"caram/internal/subsystem"
	"caram/internal/trace"
	"caram/internal/wal"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		httpAddr = flag.String("http", "", "optional HTTP listen address for /metrics, /debug/vars, /debug/pprof, /debug/traces")
		rbits    = flag.Int("indexbits", 12, "index bits per engine (2^n buckets)")
		slots    = flag.Int("slots", 8, "keys per bucket")
		engines  = flag.String("engines", "db", "comma-separated engines, each name or name:type (exact, lpm, pktclass, trigram); requests to distinct engines run in parallel")
		logLevel = flag.String("log-level", "info", "log floor: debug, info, warn, error")
		sampleN  = flag.Int("trace-sample", 0, "admit every Nth request into the sampled trace ring (0 = off)")
		slowUs   = flag.Int64("slowlog-us", 10_000, "slowlog threshold in microseconds; requests slower than this are retained with their probe trace (-1 = off)")
		ringSize = flag.Int("trace-ring", trace.DefaultRing, "retained traces per ring (slowlog and sampled)")

		eccOn    = flag.Bool("ecc", false, "enable per-row error coding: SECDED check words, quarantine, HEALTH <engine> SCRUB recovery")
		maxConns = flag.Int("max-conns", 0, "cap on concurrently served connections; excess accepts are shed with ERR BUSY (0 = unlimited)")
		readTO   = flag.Duration("read-timeout", 0, "per-read deadline once a request has started arriving (slow-loris defense; 0 = none)")
		idleTO   = flag.Duration("idle-timeout", 0, "deadline for the start of the next request on an idle connection (0 = none)")

		dataDir     = flag.String("data", "", "durability directory: WAL segments + snapshots; boot recovers the latest snapshot and replays the log tail (empty = no durability)")
		walSync     = flag.String("wal-sync", "always", "WAL sync policy: always (fsync before every ack), interval=<d> (group fsync on a timer), never (fsync only at segment roll/seal)")
		walSegBytes = flag.Int64("wal-segment-bytes", 0, "WAL segment size before rolling to a new file (0 = 64 MiB default)")
		snapEvery   = flag.Duration("snapshot-every", time.Minute, "interval between background snapshots (which truncate sealed WAL segments); 0 disables periodic snapshots")
		walSlowSync = flag.Duration("wal-slow-sync", 0, "test hook: sleep this long at the start of every WAL flush (widens the crash window for the kill harness)")

		faultSeed    = flag.Int64("fault-seed", 0, "install a deterministic soft-error injector per engine, seeded with this base (0 = off)")
		faultSingle  = flag.Float64("fault-single", 0.001, "per-fetch single-bit-flip probability when -fault-seed is set")
		faultDouble  = flag.Float64("fault-double", 0, "per-fetch double-bit-flip (uncorrectable) probability when -fault-seed is set")
		faultReadErr = flag.Float64("fault-readerr", 0, "per-fetch transient row-read-failure probability when -fault-seed is set")
		faultSpike   = flag.Float64("fault-spike", 0, "per-fetch latency-spike probability when -fault-seed is set")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("bad -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	if *faultSeed != 0 && !*eccOn {
		logger.Warn("fault injection without -ecc: corrupted rows will serve wrong data undetected")
	}
	names := strings.Split(*engines, ",")
	sub := subsystem.New(0)
	var bootstrap []*subsystem.Engine
	var rows, perRow int
	for i, name := range names {
		name = strings.TrimSpace(name)
		// Each -engines element is name or name:type (exact, lpm,
		// pktclass, trigram); a bare name keeps the historical exact
		// engine. Typed engines share -indexbits / -slots / -ecc.
		typ := subsystem.ExactEngine
		if at := strings.IndexByte(name, ':'); at >= 0 {
			var err error
			if typ, err = subsystem.ParseEngineType(name[at+1:]); err != nil {
				logger.Error("bad -engines element", "element", name, "err", err)
				os.Exit(1)
			}
			name = name[:at]
		}
		if name == "" {
			logger.Error("empty engine name in -engines")
			os.Exit(1)
		}
		if typ != subsystem.ExactEngine {
			e, err := subsystem.NewTypedEngine(name, typ, subsystem.TypedConfig{
				IndexBits: *rbits,
				Slots:     *slots,
				ECC:       *eccOn,
			})
			if err != nil {
				logger.Error("engine config", "engine", name, "err", err)
				os.Exit(1)
			}
			if *faultSeed != 0 {
				inj := fault.New(fault.Config{
					Seed:     *faultSeed + int64(i),
					PSingle:  *faultSingle,
					PDouble:  *faultDouble,
					PReadErr: *faultReadErr,
					PSpike:   *faultSpike,
				})
				e.Main.Array().InstallFaults(inj)
				inj.Enable()
			}
			bootstrap = append(bootstrap, e)
			rows, perRow = e.Main.Config().Rows(), e.Main.Config().Slots()
			continue
		}
		sl, err := caram.New(caram.Config{
			IndexBits: *rbits,
			RowBits:   *slots*(1+64+32) + 16,
			KeyBits:   64,
			DataBits:  32,
			AuxBits:   16,
			Index:     hash.NewMultShift(*rbits),
			ECC:       *eccOn,
		})
		if err != nil {
			logger.Error("engine config", "engine", name, "err", err)
			os.Exit(1)
		}
		if *faultSeed != 0 {
			// One injector per engine, derived deterministically from
			// the base seed, so a run is reproducible end to end.
			inj := fault.New(fault.Config{
				Seed:     *faultSeed + int64(i),
				PSingle:  *faultSingle,
				PDouble:  *faultDouble,
				PReadErr: *faultReadErr,
				PSpike:   *faultSpike,
			})
			sl.Array().InstallFaults(inj)
			inj.Enable()
		}
		bootstrap = append(bootstrap, &subsystem.Engine{Name: name, Main: sl})
		rows, perRow = sl.Config().Rows(), sl.Config().Slots()
	}

	// With -data, boot goes through recovery: the latest valid snapshot
	// overlays the flag-configured roster (geometry-compatible images
	// load in place, preserving any fault injector), the WAL tail
	// replays over it, and a torn tail record is truncated, never
	// applied. Without -data the bootstrap roster serves as-is and
	// nothing survives a restart.
	roster := bootstrap
	var w *wal.Log
	var rec *wal.RecoverResult
	if *dataDir != "" {
		pol, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			logger.Error("bad -wal-sync", "value", *walSync, "err", err)
			os.Exit(2)
		}
		w, rec, err = wal.Recover(*dataDir, bootstrap, wal.Options{
			Sync:         pol,
			SegmentBytes: *walSegBytes,
			SlowSync:     *walSlowSync,
		})
		if err != nil {
			logger.Error("wal recovery", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		roster = rec.Engines
		logger.Info("wal recovered",
			"dir", *dataDir,
			"snapshot_lsn", rec.SnapshotLSN,
			"last_lsn", rec.LastLSN,
			"replayed", rec.Replayed,
			"truncated_bytes", rec.TruncatedBytes,
			"clean_shutdown", rec.CleanShutdown,
			"sync", pol.String())
	}
	for _, e := range roster {
		if err := sub.AddEngine(e); err != nil {
			logger.Error("add engine", "engine", e.Name, "err", err)
			os.Exit(1)
		}
	}

	slowlog := time.Duration(-1)
	if *slowUs >= 0 {
		slowlog = time.Duration(*slowUs) * time.Microsecond
	}
	col := trace.NewCollector(trace.Config{SampleN: *sampleN, Slowlog: slowlog, Ring: *ringSize})
	srvOpts := []server.Option{server.WithTracing(col), server.WithLogger(logger)}
	if *maxConns > 0 {
		srvOpts = append(srvOpts, server.WithConnLimit(*maxConns))
	}
	if *readTO > 0 || *idleTO > 0 {
		srvOpts = append(srvOpts, server.WithTimeouts(*readTO, *idleTO))
	}
	if w != nil {
		srvOpts = append(srvOpts, server.WithWAL(w, rec.RosterLSN, *snapEvery))
	}
	srv := server.New(sub, srvOpts...)

	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			logger.Error("http listen", "addr", *httpAddr, "err", err)
			os.Exit(1)
		}
		logger.Info("http endpoints up",
			"metrics", "http://"+hl.Addr().String()+"/metrics",
			"traces", "http://"+hl.Addr().String()+"/debug/traces")
		h := metrics.Handler(srv.Metrics(), metrics.WithHandler("/debug/traces", col.Handler()))
		go func() {
			if err := http.Serve(hl, h); err != nil {
				logger.Error("http serve", "err", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen", "addr", *addr, "err", err)
		os.Exit(1)
	}

	// Install the handler before announcing "serving": a supervisor
	// that reacts to that line may signal immediately, and a SIGTERM
	// landing before Notify would kill the process with no drain, no
	// final snapshot, and no seal.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	closeDone := make(chan struct{})
	go func() {
		defer close(closeDone)
		s := <-sig
		logger.Info("shutting down", "signal", s.String())
		if err := srv.Close(); err != nil {
			logger.Error("close", "err", err)
		}
	}()

	logger.Info("serving",
		"engines", len(names),
		"names", strings.Join(names, ","),
		"buckets", rows,
		"slots", perRow,
		"addr", l.Addr().String(),
		"slowlog_us", *slowUs,
		"trace_sample", *sampleN,
		"ecc", *eccOn,
		"fault_seed", *faultSeed,
		"max_conns", *maxConns,
		"data", *dataDir)

	err = srv.Serve(l)
	switch {
	case errors.Is(err, server.ErrServerClosed):
		// Serve unblocks as soon as the listener drops; Close is still
		// draining handlers, snapshotting, and sealing the WAL. Exiting
		// now would turn every graceful shutdown into a crash recovery.
		<-closeDone
	case err != nil:
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	logger.Info("bye")
}
