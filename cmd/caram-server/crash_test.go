package main

// Kill-injection harness: boots the real caram-server binary as a
// subprocess over a durability directory, drives acked writes over
// TCP, SIGKILLs it at random points — including mid-fsync via the
// -wal-slow-sync hook — restarts it on the same directory, and asserts
// the durability contract: every acked write is present, every write
// that was never acked is absent. Run by `make crash-guard` / `make
// ci`; CRASH_GUARD_ITERS raises the kill-loop count for soak runs.

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	buildExe  string
	buildErr  error
)

// serverBinary builds ./cmd/caram-server once per test run.
func serverBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "caram-crash-*")
		if err != nil {
			buildErr = err
			return
		}
		buildExe = filepath.Join(dir, "caram-server")
		cmd := exec.Command("go", "build", "-o", buildExe, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildExe
}

// proc is one live server subprocess.
type proc struct {
	cmd    *exec.Cmd
	addr   string
	stderr *strings.Builder // complete stderr, for post-mortem greps
	mu     *sync.Mutex      // guards stderr
}

func (p *proc) stderrText() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

// startServer launches the binary with -addr 127.0.0.1:0 plus extra
// flags and waits for the slog "serving" line to learn the bound port.
func startServer(t *testing.T, exe string, extra ...string) *proc {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-indexbits", "8", "-slots", "4"}, extra...)
	cmd := exec.Command(exe, args...)
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, stderr: &strings.Builder{}, mu: &sync.Mutex{}}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.stderr.WriteString(line)
			p.stderr.WriteByte('\n')
			p.mu.Unlock()
			if strings.Contains(line, "msg=serving") {
				for _, f := range strings.Fields(line) {
					if a, ok := strings.CutPrefix(f, "addr="); ok {
						select {
						case addrCh <- a:
						default:
						}
					}
				}
			}
		}
		close(addrCh)
	}()
	select {
	case a, ok := <-addrCh:
		if !ok {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
			t.Fatalf("server exited before serving:\n%s", p.stderrText())
		}
		p.addr = a
	case <-time.After(20 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		t.Fatalf("server did not report serving:\n%s", p.stderrText())
	}
	return p
}

func (p *proc) kill(t *testing.T) {
	t.Helper()
	p.cmd.Process.Signal(syscall.SIGKILL) //nolint:errcheck
	p.cmd.Wait()                          //nolint:errcheck
}

// terminate asks for a graceful shutdown and waits for exit.
func (p *proc) terminate(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown exited non-zero: %v\n%s", err, p.stderrText())
		}
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill() //nolint:errcheck
		t.Fatalf("graceful shutdown hung\n%s", p.stderrText())
	}
}

// dial connects to the subprocess with a request/reply helper.
func dial(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	var conn net.Conn
	var err error
	for i := 0; i < 50; i++ {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	conn.SetDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	return conn, bufio.NewReader(conn)
}

func roundTrip(conn net.Conn, br *bufio.Reader, req string) (string, error) {
	if _, err := fmt.Fprintf(conn, "%s\n", req); err != nil {
		return "", err
	}
	line, err := br.ReadString('\n')
	return strings.TrimSuffix(line, "\n"), err
}

func crashIters() int {
	if s := os.Getenv("CRASH_GUARD_ITERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 3
}

// TestCrashKillRecovery is the core durability contract, proven
// against the real binary: a writer hammers acked INSERTs while the
// server is SIGKILLed at a random moment mid-stream; after restart on
// the same -data directory, every key whose OK was received must HIT.
// The slow-sync hook stretches each fsync so kills routinely land in
// the middle of a group commit. Looped; CRASH_GUARD_ITERS extends the
// soak.
func TestCrashKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill loop")
	}
	exe := serverBinary(t)
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var (
		ackMu sync.Mutex
		acked []uint64
	)
	next := uint64(1)

	for iter := 0; iter < crashIters(); iter++ {
		p := startServer(t, exe, "-data", dir, "-wal-sync", "always",
			"-wal-slow-sync", "2ms", "-snapshot-every", "150ms",
			"-wal-segment-bytes", "4096")

		stop := make(chan struct{})
		writerDone := make(chan struct{})
		go func() {
			defer close(writerDone)
			conn, br := dial(t, p.addr)
			defer conn.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := next
				reply, err := roundTrip(conn, br, fmt.Sprintf("INSERT db %x %x", k, k*7+1))
				if err != nil {
					return // connection died in the kill: k was never acked
				}
				if reply != "OK" {
					return // e.g. capacity; stop growing the set
				}
				ackMu.Lock()
				acked = append(acked, k)
				ackMu.Unlock()
				next = k + 1
			}
		}()

		// Kill at a random point while the writer is mid-stream.
		time.Sleep(time.Duration(30+rng.Intn(120)) * time.Millisecond)
		p.kill(t)
		close(stop)
		<-writerDone

		// Restart on the same directory; every acked key must HIT.
		p = startServer(t, exe, "-data", dir, "-wal-sync", "always")
		conn, br := dial(t, p.addr)
		ackMu.Lock()
		keys := append([]uint64(nil), acked...)
		ackMu.Unlock()
		for _, k := range keys {
			reply, err := roundTrip(conn, br, fmt.Sprintf("SEARCH db %x", k))
			if err != nil {
				t.Fatalf("iter %d: SEARCH after recovery: %v", iter, err)
			}
			want := fmt.Sprintf("HIT 0:%016x", k*7+1)
			if reply != want {
				t.Fatalf("iter %d: acked key %x lost in crash: got %q, want %q\n%s",
					iter, k, reply, want, p.stderrText())
			}
		}
		conn.Close()
		p.terminate(t)
	}
	t.Logf("%d acked writes survived %d kills", len(acked), crashIters())
}

// TestCrashSlowSyncUnackedAbsent pins the other half of the contract:
// a write whose ack never arrived must be absent after the crash. The
// slow-sync hook sleeps before the syncer takes its batch, so a write
// issued into that window is still in the userland buffer when the
// SIGKILL lands — deterministically unacked and undurable.
func TestCrashSlowSyncUnackedAbsent(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill")
	}
	exe := serverBinary(t)
	dir := t.TempDir()

	// Phase 1: a normally-synced server acks key A and shuts down.
	p := startServer(t, exe, "-data", dir, "-wal-sync", "always")
	conn, br := dial(t, p.addr)
	if reply, err := roundTrip(conn, br, "INSERT db aa 1"); err != nil || reply != "OK" {
		t.Fatalf("INSERT aa: %q %v", reply, err)
	}
	conn.Close()
	p.terminate(t)

	// Phase 2: every fsync now stalls 500ms. Issue key B but do not
	// wait for (and never receive) its ack; kill inside the stall.
	p = startServer(t, exe, "-data", dir, "-wal-sync", "always", "-wal-slow-sync", "500ms")
	conn, _ = dial(t, p.addr)
	if _, err := conn.Write([]byte("INSERT db bb 2\n")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // inside the 500ms sync stall
	p.kill(t)
	conn.Close()

	// Phase 3: recovery must have A (acked) and must not have B
	// (unacked — its record never reached the kernel).
	p = startServer(t, exe, "-data", dir, "-wal-sync", "always")
	defer p.terminate(t)
	conn, br = dial(t, p.addr)
	defer conn.Close()
	if reply, err := roundTrip(conn, br, "SEARCH db aa"); err != nil || reply != "HIT 0:0000000000000001" {
		t.Fatalf("acked key lost: %q %v", reply, err)
	}
	if reply, err := roundTrip(conn, br, "SEARCH db bb"); err != nil || reply != "MISS" {
		t.Fatalf("unacked key leaked into recovery: %q %v", reply, err)
	}
}

// TestGracefulShutdownZeroReplay: SIGTERM must drain, snapshot, and
// seal, so the next boot replays zero records — the restart-cost half
// of the durability contract, asserted via the boot log's replayed=
// field and by re-reading the data.
func TestGracefulShutdownZeroReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess round trip")
	}
	exe := serverBinary(t)
	dir := t.TempDir()

	p := startServer(t, exe, "-data", dir, "-wal-sync", "always")
	conn, br := dial(t, p.addr)
	for i := 1; i <= 8; i++ {
		req := fmt.Sprintf("INSERT db %x %x", i, i+100)
		if reply, err := roundTrip(conn, br, req); err != nil || reply != "OK" {
			t.Fatalf("%s: %q %v", req, reply, err)
		}
	}
	conn.Close()
	p.terminate(t)

	p = startServer(t, exe, "-data", dir, "-wal-sync", "always")
	defer p.terminate(t)
	boot := p.stderrText()
	if !strings.Contains(boot, "replayed=0") || !strings.Contains(boot, "clean_shutdown=true") {
		t.Fatalf("boot after graceful shutdown was not clean:\n%s", boot)
	}
	conn, br = dial(t, p.addr)
	defer conn.Close()
	for i := 1; i <= 8; i++ {
		want := fmt.Sprintf("HIT 0:%016x", i+100)
		if reply, err := roundTrip(conn, br, fmt.Sprintf("SEARCH db %x", i)); err != nil || reply != want {
			t.Fatalf("key %x after clean restart: %q %v", i, reply, err)
		}
	}
}
