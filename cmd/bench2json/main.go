// Command bench2json converts `go test -bench` text output (stdin)
// into a JSON array (stdout), one object per benchmark result line:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/bench2json > BENCH.json
//
// Each object carries the benchmark name, iteration count, ns/op, and —
// when -benchmem or b.ReportAllocs added them — B/op and allocs/op.
// Custom b.ReportMetric units land in an "extra" map keyed by unit.
// Context lines (goos/goarch/pkg/cpu) are captured once at the top
// level. The tool has no flags and no dependencies; it exists so `make
// bench-json` can freeze benchmark runs into versioned artifacts like
// BENCH_PR3.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BPerOp     *float64           `json:"b_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	MBPerSec   *float64           `json:"mb_per_s,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// Output is the whole run.
type Output struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := Output{Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(line[len("goos:"):])
			continue
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(line[len("goarch:"):])
			continue
		case strings.HasPrefix(line, "pkg:"):
			out.Pkg = strings.TrimSpace(line[len("pkg:"):])
			continue
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(line[len("cpu:"):])
			continue
		}
		if r, ok := parseLine(line); ok {
			out.Results = append(out.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json: write:", err)
		os.Exit(1)
	}
}

// parseLine decodes one "BenchmarkName-8  1234  56.7 ns/op  0 B/op ..."
// line. Values come in "<number> <unit>" pairs after the iteration
// count.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			r.BPerOp = ptr(v)
		case "allocs/op":
			r.AllocsOp = ptr(v)
		case "MB/s":
			r.MBPerSec = ptr(v)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	return r, seenNs
}

func ptr(v float64) *float64 { return &v }
